"""AIMD adaptive concurrency limiting for the solver service.

The service's fixed ``max_queue`` bound protects memory, but it knows
nothing about *throughput*: a queue of 64 requests that each take two
seconds is a two-minute latency promise nobody made.
:class:`AdaptiveLimiter` closes that loop with the classic TCP-style
AIMD rule over the count of outstanding requests:

* **additive increase** — each success nudges the limit up by
  ``increase / limit`` (one full unit per round-trip of the window), so
  a healthy service gradually admits more concurrency;
* **multiplicative decrease** — an overload signal (queue-full shed, a
  deadline failure, or a completion slower than ``latency_target_s``)
  halves the limit, at most once per ``cooldown_s`` so one burst of
  correlated failures counts as one signal.

The service consults ``limit`` at admission (outstanding work beyond it
is shed exactly like a full queue) and reports it as the
``admission_limit`` gauge in :class:`~repro.service.stats.ServiceStats`
and the health report.  The limiter is deliberately clock-injectable and
free of service imports so the AIMD dynamics unit-test in isolation.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["AdaptiveLimiter"]


class AdaptiveLimiter:
    """Thread-safe AIMD concurrency limit.

    Parameters
    ----------
    initial:
        Starting limit (also the ceiling recovery converges back toward
        if ``max_limit`` allows).
    min_limit, max_limit:
        Hard clamp on the adaptive range; the limit never sheds below
        ``min_limit`` (the service must always make progress) nor grows
        past ``max_limit``.
    latency_target_s:
        Optional service-level objective: a success slower than this is
        treated as an overload signal instead of an increase.  ``None``
        disables latency-based shedding.
    increase:
        Additive-increase numerator; each success adds
        ``increase / limit``.
    decrease_factor:
        Multiplicative-decrease factor in ``(0, 1)``.
    cooldown_s:
        Minimum spacing between applied decreases.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        initial: int = 8,
        min_limit: int = 1,
        max_limit: int = 1024,
        latency_target_s: Optional[float] = None,
        increase: float = 1.0,
        decrease_factor: float = 0.5,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if min_limit < 1:
            raise ValueError(f"min_limit must be >= 1, got {min_limit}")
        if max_limit < min_limit:
            raise ValueError(
                f"max_limit must be >= min_limit, got {max_limit} < {min_limit}"
            )
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {decrease_factor}"
            )
        if increase <= 0:
            raise ValueError(f"increase must be positive, got {increase}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        if latency_target_s is not None and latency_target_s <= 0:
            raise ValueError(
                f"latency_target_s must be positive, got {latency_target_s}"
            )
        self.min_limit = int(min_limit)
        self.max_limit = int(max_limit)
        self.latency_target_s = latency_target_s
        self.increase = float(increase)
        self.decrease_factor = float(decrease_factor)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._limit = float(min(max(initial, min_limit), max_limit))
        self._last_decrease: Optional[float] = None
        self._successes = 0
        self._overload_signals = 0
        self._decreases = 0

    @property
    def limit(self) -> int:
        """Current admission limit (floor of the fractional AIMD state)."""
        with self._lock:
            return int(self._limit)

    def on_success(self, latency_s: Optional[float] = None) -> bool:
        """Record one completed request; returns True if it counted as overload.

        A success slower than ``latency_target_s`` is an overload signal
        (the service is finishing work, just too late to matter);
        otherwise the limit takes its additive increase.
        """
        if (
            self.latency_target_s is not None
            and latency_s is not None
            and latency_s > self.latency_target_s
        ):
            return self.on_overload()
        with self._lock:
            self._successes += 1
            self._limit = min(
                float(self.max_limit),
                self._limit + self.increase / max(self._limit, 1.0),
            )
        return False

    def on_overload(self) -> bool:
        """Record an overload signal; returns whether a decrease applied.

        Signals inside the cooldown window are counted but do not shrink
        the limit again — one correlated burst, one decrease.
        """
        with self._lock:
            self._overload_signals += 1
            now = self._clock()
            if (
                self._last_decrease is not None
                and now - self._last_decrease < self.cooldown_s
            ):
                return False
            self._last_decrease = now
            self._limit = max(
                float(self.min_limit), self._limit * self.decrease_factor
            )
            self._decreases += 1
            return True

    def snapshot(self) -> Dict[str, object]:
        """Counters + current limit (for health reports and tests)."""
        with self._lock:
            return {
                "limit": int(self._limit),
                "min_limit": self.min_limit,
                "max_limit": self.max_limit,
                "latency_target_s": self.latency_target_s,
                "successes": self._successes,
                "overload_signals": self._overload_signals,
                "decreases": self._decreases,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AdaptiveLimiter(limit={self.limit}, "
            f"range=[{self.min_limit}, {self.max_limit}])"
        )
