"""Resilience layer: supervision, leak reaping, backpressure, chaos.

PR 6 made the parallelism real — shard processes, shared-memory
segments, a subprocess worker pool — and every one of those is a new
way to fail *partially*: a killed owner leaks its segment until reboot,
a wedged worker stalls its queue slot, a burst of traffic overwhelms a
fixed admission bound.  This package supervises the whole stack:

========================  ==================================================
:mod:`~repro.resilience.health`        one :class:`HealthReport` spanning
                                       pool workers, shard pools, breakers,
                                       queue, and segment inventory
                                       (surfaced as ``SolverService.health()``
                                       and ``repro health``)
:mod:`~repro.resilience.reaper`        detects and unlinks shared-memory
                                       segments orphaned by killed owners,
                                       using the on-disk ledger
                                       (:mod:`repro.backends.ledger`)
:mod:`~repro.resilience.supervisor`    background thread running periodic
                                       health probes and reap sweeps
:mod:`~repro.resilience.backpressure`  AIMD adaptive concurrency limit and
                                       the hedged-retry policy behind the
                                       service's ``backpressure``/
                                       ``hedge_delay_s`` knobs
:mod:`~repro.resilience.chaos`         declarative :class:`ChaosScenario`
                                       records and the one runner that
                                       executes them across kernels →
                                       engines → backends → service
========================  ==================================================

Layering: ``resilience`` sits on top of the service tier — it may import
``service``, ``backends``, ``core``, and ``robustness``, and nothing
below the bench/CLI layer imports it (the service reaches it only
through lazy calls in ``health()``/``start()``).
"""

from repro.resilience.backpressure import AdaptiveLimiter
from repro.resilience.chaos import (
    SCENARIOS,
    ChaosScenario,
    ScenarioOutcome,
    run_scenario,
    scenario_by_name,
)
from repro.resilience.health import (
    HealthReport,
    SegmentHealth,
    WorkerHealth,
    build_health_report,
)
from repro.resilience.reaper import ReapReport, reap_orphans, segment_inventory
from repro.resilience.supervisor import Supervisor

__all__ = [
    "AdaptiveLimiter",
    "ChaosScenario",
    "HealthReport",
    "ReapReport",
    "SCENARIOS",
    "ScenarioOutcome",
    "SegmentHealth",
    "Supervisor",
    "WorkerHealth",
    "build_health_report",
    "reap_orphans",
    "run_scenario",
    "scenario_by_name",
    "segment_inventory",
]
