"""Orphaned shared-memory segment detection and removal.

A POSIX shared-memory segment whose owner was SIGKILL'd (OOM killer,
``kill -9``, a crashed chaos run) survives until reboot: no finalizer,
``atexit`` hook, or service shutdown path ever ran.  The segment ledger
(:mod:`repro.backends.ledger`) records every create with the owner's
pid, which turns reaping into a simple decision per owner record:

* owner alive (``os.kill(pid, 0)`` succeeds) → leave the segment alone;
* owner dead, segment still present → unlink it and drop the record;
* owner dead, segment already gone → the record is stale; drop it.

Attach sidecar records from dead processes are swept in the same pass.
Unlinking a segment that live processes still have *attached* is safe —
the kernel keeps their mappings until the last one closes; only the
name disappears — and cannot happen for correct owners anyway, because
a live owner blocks the reap.

:func:`reap_orphans` runs at service startup, on the supervisor's
timer, and behind ``repro reap``.  It never touches segments without a
ledger record (it cannot know their owner); those are reported as
*unledgered* in the inventory instead.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backends.ledger import LedgerEntry, SegmentLedger, default_ledger
from repro.backends.sharedmem import _attach_untracked

__all__ = ["ReapReport", "SegmentRecord", "reap_orphans", "segment_inventory"]


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-uid process
        return True
    return True


def _segment_exists(name: str) -> Optional[int]:
    """Size of the named segment, or ``None`` when it does not exist."""
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return None
    size = shm.size
    shm.close()
    return size


def _unlink_segment(name: str) -> bool:
    """Remove the named segment; returns whether it was present."""
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced another reaper
        pass
    shm.close()
    return True


@dataclass(frozen=True)
class SegmentRecord:
    """One ledger owner record cross-checked against the live system."""

    name: str
    pid: int
    role: str
    owner_alive: bool
    exists: bool
    age_s: float
    nbytes: Optional[int] = None
    fingerprint: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "pid": self.pid,
            "role": self.role,
            "owner_alive": self.owner_alive,
            "exists": self.exists,
            "age_s": round(self.age_s, 3),
            "nbytes": self.nbytes,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class ReapReport:
    """Outcome of one reap sweep (JSON-ready via :meth:`as_dict`)."""

    scanned: int                 #: owner records examined
    live: int                    #: segments whose owner is alive (kept)
    reaped: List[str] = field(default_factory=list)    #: unlinked orphans
    stale: List[str] = field(default_factory=list)     #: records w/o segment
    skipped: List[str] = field(default_factory=list)   #: younger than min age
    attach_swept: int = 0        #: dead-pid attach sidecars removed
    snapshot_tmp_swept: int = 0  #: stray ``*.tmp`` snapshot files removed
    quarantined_snapshots: int = 0       #: ``.corrupt`` snapshot files seen
    quarantined_ledger_records: int = 0  #: ``.corrupt`` ledger files seen
    quarantine_purged: int = 0   #: quarantined files deleted (purge mode)
    dry_run: bool = False

    @property
    def orphans(self) -> int:
        """Orphaned segments found (reaped, or reported under dry-run)."""
        return len(self.reaped)

    def as_dict(self) -> Dict[str, object]:
        return {
            "scanned": self.scanned,
            "live": self.live,
            "reaped": list(self.reaped),
            "stale": list(self.stale),
            "skipped": list(self.skipped),
            "attach_swept": self.attach_swept,
            "snapshot_tmp_swept": self.snapshot_tmp_swept,
            "quarantined_snapshots": self.quarantined_snapshots,
            "quarantined_ledger_records": self.quarantined_ledger_records,
            "quarantine_purged": self.quarantine_purged,
            "dry_run": self.dry_run,
        }

    def format(self) -> str:
        """Human-readable one-sweep summary."""
        verb = "would reap" if self.dry_run else "reaped"
        lines = [
            "scanned:".ljust(15) + f"{self.scanned} owner record(s), "
            f"{self.live} live",
            f"{verb}:".ljust(15) + f"{len(self.reaped)} orphaned segment(s)",
        ]
        for name in self.reaped:
            lines.append(f"  - {name}")
        if self.stale:
            lines.append(f"stale records: {len(self.stale)} dropped")
        if self.skipped:
            lines.append(f"skipped:      {len(self.skipped)} (younger than min age)")
        if self.attach_swept:
            lines.append(f"attach sweeps: {self.attach_swept} dead-pid sidecar(s)")
        if self.snapshot_tmp_swept:
            lines.append(
                f"tmp sweeps:    {self.snapshot_tmp_swept} stray snapshot "
                f"temp file(s)"
            )
        quarantined = self.quarantined_snapshots + self.quarantined_ledger_records
        if quarantined or self.quarantine_purged:
            verb = "purged" if self.quarantine_purged else "held"
            lines.append(
                f"quarantine:    {quarantined} corrupt file(s) "
                f"({self.quarantined_snapshots} snapshot, "
                f"{self.quarantined_ledger_records} ledger), "
                f"{self.quarantine_purged} {verb}"
            )
        return "\n".join(lines)


def segment_inventory(
    ledger: Optional[SegmentLedger] = None,
) -> List[SegmentRecord]:
    """Every ledgered owner record, cross-checked against pids and /dev/shm."""
    ledger = ledger or default_ledger()
    now = time.time()
    out: List[SegmentRecord] = []
    for entry in ledger.owners():
        size = _segment_exists(entry.name)
        out.append(SegmentRecord(
            name=entry.name,
            pid=entry.pid,
            role=entry.role,
            owner_alive=_pid_alive(entry.pid),
            exists=size is not None,
            age_s=max(now - entry.created, 0.0),
            nbytes=size if size is not None else entry.nbytes,
            fingerprint=entry.fingerprint,
        ))
    return out


def reap_orphans(
    ledger: Optional[SegmentLedger] = None,
    *,
    min_age_s: float = 0.0,
    dry_run: bool = False,
    snapshot_dir: Optional[str] = None,
    purge_quarantine: bool = False,
) -> ReapReport:
    """One reap sweep over the ledger; returns what was (or would be) done.

    *min_age_s* skips records younger than the threshold — a guard
    against racing a segment whose owner record and process are still
    being set up (pid reuse in the window between fork and record is the
    only way a dead-pid young record can be wrong).  ``dry_run=True``
    reports orphans without unlinking anything.

    With *snapshot_dir* the sweep also covers session-snapshot debris:
    stray ``*.tmp`` files (a writer killed between ``mkstemp`` and
    ``os.replace``) are removed and counted, and quarantined
    ``.corrupt`` files — snapshot and ledger — are counted.  Quarantine
    is *held* for inspection (``repro recover``) unless
    ``purge_quarantine=True`` explicitly deletes it.
    """
    ledger = ledger or default_ledger()
    snapshot_tmp_swept = quarantined_snapshots = 0
    quarantine_purged = 0
    if snapshot_dir is not None and not dry_run:
        from repro.dynamic.store import SnapshotStore

        store = SnapshotStore(snapshot_dir)  # construction sweeps *.tmp
        snapshot_tmp_swept = store.tmp_swept
        quarantined_snapshots = len(store.corrupt_files())
        if purge_quarantine:
            quarantine_purged += len(store.sweep_corrupt())
    entries: List[LedgerEntry] = ledger.entries()
    reaped: List[str] = []
    stale: List[str] = []
    skipped: List[str] = []
    scanned = live = attach_swept = 0
    for entry in entries:
        alive = _pid_alive(entry.pid)
        if entry.record == "attach":
            if not alive and not dry_run:
                ledger.forget_attach(entry.name, pid=entry.pid)
                attach_swept += 1
            continue
        scanned += 1
        if alive:
            live += 1
            continue
        if entry.age_s < min_age_s:
            skipped.append(entry.name)
            continue
        if dry_run:
            if _segment_exists(entry.name) is not None:
                reaped.append(entry.name)
            else:
                stale.append(entry.name)
            continue
        if _unlink_segment(entry.name):
            reaped.append(entry.name)
        else:
            stale.append(entry.name)
        ledger.forget(entry.name)
    # Counted after the scan: entries() itself quarantines corrupt records.
    quarantined_ledger = len(ledger.corrupt_files())
    if purge_quarantine and not dry_run:
        quarantine_purged += len(ledger.sweep_corrupt())
    return ReapReport(
        scanned=scanned,
        live=live,
        reaped=sorted(reaped),
        stale=sorted(stale),
        skipped=sorted(skipped),
        attach_swept=attach_swept,
        snapshot_tmp_swept=snapshot_tmp_swept,
        quarantined_snapshots=quarantined_snapshots,
        quarantined_ledger_records=quarantined_ledger,
        quarantine_purged=quarantine_purged,
        dry_run=dry_run,
    )
