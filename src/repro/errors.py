"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything produced by this package with a single ``except``
clause while still letting programming errors (``TypeError`` from numpy,
etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "InvalidGraphError",
    "InvalidOrderingError",
    "EngineError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphFormatError(ReproError):
    """A graph file or serialized payload could not be parsed.

    Raised by :mod:`repro.graphs.io` when a file does not follow the PBBS
    adjacency-graph or edge-list formats, or when the declared counts are
    inconsistent with the payload.
    """


class InvalidGraphError(ReproError):
    """Graph arrays violate the CSR invariants.

    Examples: non-monotone offsets, neighbor indices out of range, an
    asymmetric adjacency structure where an undirected graph is required,
    or self-loops passed to an algorithm that forbids them.
    """


class InvalidOrderingError(ReproError):
    """A priority array is not a permutation of the expected index range."""


class EngineError(ReproError):
    """An algorithm engine was misconfigured (unknown method, bad prefix
    size, invalid processor count, ...)."""


class VerificationError(ReproError):
    """An output failed verification against its specification.

    Raised by the ``verify`` helpers when asked to *assert* validity (as
    opposed to the boolean-returning predicates, which never raise).
    """
