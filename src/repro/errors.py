"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything produced by this package with a single ``except``
clause while still letting programming errors (``TypeError`` from numpy,
etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "InvalidGraphError",
    "InvalidOrderingError",
    "EngineError",
    "VerificationError",
    "InvariantViolationError",
    "BudgetExceededError",
    "VersionConflictError",
    "ServiceError",
    "QueueFullError",
    "DeadlineExceededError",
    "WorkerCrashError",
    "CircuitOpenError",
    "UnknownSessionError",
    "SnapshotCorruptError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphFormatError(ReproError):
    """A graph file or serialized payload could not be parsed.

    Raised by :mod:`repro.graphs.io` when a file does not follow the PBBS
    adjacency-graph or edge-list formats, or when the declared counts are
    inconsistent with the payload.
    """


class InvalidGraphError(ReproError):
    """Graph arrays violate the CSR invariants.

    Examples: non-monotone offsets, neighbor indices out of range, an
    asymmetric adjacency structure where an undirected graph is required,
    or self-loops passed to an algorithm that forbids them.
    """


class InvalidOrderingError(ReproError):
    """A priority array is not a permutation of the expected index range."""


class EngineError(ReproError):
    """An algorithm engine was misconfigured (unknown method, bad prefix
    size, invalid processor count, ...)."""


class VerificationError(ReproError):
    """An output failed verification against its specification.

    Raised by the ``verify`` helpers when asked to *assert* validity (as
    opposed to the boolean-returning predicates, which never raise).
    """


class InvariantViolationError(ReproError):
    """A runtime invariant guard detected corrupted execution state.

    Raised by the guard hooks of :mod:`repro.robustness.guards` when an
    engine running with ``guards="cheap"`` or ``guards="full"`` observes a
    state no correct execution can reach — a duplicated frontier vertex, a
    root with an already-accepted neighbor, an undecided item surviving
    termination.  Distinct from :class:`VerificationError` (post-hoc output
    checking): this fires *during* the run, at the round that went wrong.
    """


class BudgetExceededError(ReproError):
    """An engine or sweep ran past its wall-clock or step budget.

    Raised by :class:`repro.robustness.Budget` checkpoints threaded through
    the engines and :mod:`repro.bench.sweeps`.  The work performed before
    the budget tripped is already charged to the machine, so callers can
    inspect partial accounting.
    """


class VersionConflictError(ReproError):
    """A mutation's ``if_version`` precondition no longer holds.

    Raised by the stateful session API when a compare-and-swap mutation
    names a committed version that has since moved — another client (or
    a retried duplicate of this one) already advanced the session.  The
    input is valid and the service is healthy; the *precondition* failed,
    so this is neither the invalid-input family (exit ``2``) nor the
    operational :class:`ServiceError` family (exit ``5``).  The HTTP
    gateway maps it onto ``409`` and the CLI onto exit code ``7``; the
    right client reaction is to re-read the current version and decide,
    never to blindly retry.
    """


class ServiceError(ReproError):
    """Base class for failures raised by :mod:`repro.service`.

    Subclasses cover the operational outcomes of the crash-isolated
    solver service: load shedding, blown deadlines, unrecoverable worker
    deaths, and tripped circuit breakers.  A request that fails with a
    :class:`ServiceError` failed *operationally* — the input itself may
    be perfectly valid.
    """


class QueueFullError(ServiceError):
    """The service's bounded admission queue rejected a submission.

    Load shedding instead of unbounded memory growth: the caller can
    back off and retry, or raise the ``max_queue`` configuration knob.
    """


class DeadlineExceededError(ServiceError):
    """A request ran out of wall-clock deadline.

    Raised whether the deadline expired while the request was still
    queued, inside a worker (propagated as a
    :class:`~repro.robustness.Budget` and surfaced as this type), or
    because a hung worker had to be killed after the deadline passed.
    """


class WorkerCrashError(ServiceError):
    """A request's worker died (crash/OOM/kill) and retries ran out.

    The message carries the per-attempt log so a post-mortem can see
    which workers died and what each attempt observed.
    """


class CircuitOpenError(ServiceError):
    """Every eligible engine's circuit breaker is open.

    Raised when the requested method and the whole degradation chain
    behind it are all tripped; the request is failed fast rather than
    queued behind engines that are currently failing.
    """


class UnknownSessionError(ServiceError):
    """A session id does not name a live (or restorable) session.

    Raised by the stateful session API of :class:`~repro.service.SolverService`
    when a mutate/query/snapshot/close call targets an id that was never
    created, was already closed, or has no snapshot to restore from.  The
    HTTP gateway maps it onto ``404``.
    """


class SnapshotCorruptError(ServiceError):
    """A durability artifact failed its embedded content checksum.

    Raised by :class:`~repro.dynamic.store.SnapshotStore` (and detected
    by the segment ledger scan) when a persisted record is torn,
    truncated, or bit-flipped: the file parses wrong or its payload no
    longer matches the checksum written alongside it.  The offending
    file is renamed to a ``.corrupt`` quarantine before this is raised,
    so a retry never re-reads the same poison and the reaper / ``repro
    recover`` can inspect what was lost.  An operational failure of the
    durability layer (HTTP ``503``, CLI exit ``5``) — never a raw
    ``json.JSONDecodeError`` escaping the taxonomy.
    """
