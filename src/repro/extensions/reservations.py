"""Deterministic reservations: the generic prefix-speculation framework.

The paper's implementations (and the PBBS suite built by its authors)
execute greedy loops with a common pattern the companion PPoPP'12 paper
names *deterministic reservations*: take a prefix of the iteration order,
let every iterate speculatively **reserve** the shared state it needs via
priority write-min, then **commit** the iterates whose reservations held;
losers retry in the next round together with fresh prefix items.  Because
reservations resolve by iteration priority, the final state equals the
sequential loop's — determinism for free.

This module provides the generic engine, :func:`speculative_for`, plus
MIS and maximal-matching instantiations used to cross-validate the
dedicated engines in :mod:`repro.core` (they must agree exactly — the
property suite enforces it).

An iterate's step callbacks:

``reserve(i) -> bool``
    Attempt reservations for iterate *i*; return ``False`` to declare the
    iterate already settled with no commit needed (it leaves the round).
``commit(i) -> bool``
    Return ``True`` if the iterate finished (committed or discovered it
    is dead); ``False`` to retry next round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.orderings import (
    permutation_from_ranks,
    random_priorities,
    validate_priorities,
)
from repro.core.result import MatchingResult, MISResult, stats_from_machine
from repro.core.status import (
    EDGE_DEAD,
    EDGE_LIVE,
    EDGE_MATCHED,
    IN_SET,
    KNOCKED_OUT,
    UNDECIDED,
    new_edge_status,
    new_vertex_status,
)
from repro.errors import EngineError
from repro.graphs.csr import CSRGraph, EdgeList
from repro.pram.machine import Machine, log2_depth
from repro.util.rng import SeedLike
from repro.util.validation import check_positive_int

__all__ = ["speculative_for", "reservation_mis", "reservation_matching"]


def speculative_for(
    num_items: int,
    reserve: Callable[[int], bool],
    commit: Callable[[int], bool],
    *,
    granularity: int,
    machine: Optional[Machine] = None,
    max_rounds: Optional[int] = None,
) -> int:
    """Run the deterministic-reservations loop; return the round count.

    Items are processed in index order (pre-permute your data so that the
    index *is* the priority).  Each round handles a window of up to
    *granularity* unfinished items: the lowest-priority-index survivors of
    previous rounds plus fresh items.

    Parameters
    ----------
    num_items:
        Number of iterates.
    reserve, commit:
        Per-item callbacks (see module docstring).
    granularity:
        Window size — the prefix-size dial, same trade-off as Algorithm 3.
    machine:
        Charged one step per phase per round (work = window size).
    max_rounds:
        Safety valve; a framework user whose commit never succeeds would
        otherwise loop forever.  Defaults to ``4 * num_items + 16``.
    """
    granularity = check_positive_int(granularity, "granularity")
    if max_rounds is None:
        max_rounds = 4 * num_items + 16
    active: list = []
    next_fresh = 0
    rounds = 0
    while active or next_fresh < num_items:
        rounds += 1
        if rounds > max_rounds:
            raise EngineError(
                f"speculative_for exceeded {max_rounds} rounds; "
                "commit() appears to never succeed for some iterate"
            )
        if machine is not None:
            machine.begin_round()
        while len(active) < granularity and next_fresh < num_items:
            active.append(next_fresh)
            next_fresh += 1
        window = active
        needs_commit = [i for i in window if reserve(i)]
        settled = set(window) - set(needs_commit)
        retry = [i for i in needs_commit if not commit(i)]
        if machine is not None:
            machine.charge(len(window), log2_depth(max(len(window), 2)), tag="reserve")
            machine.charge(
                max(len(needs_commit), 1),
                log2_depth(max(len(needs_commit), 2)),
                tag="commit",
            )
        # Preserve priority order among retries.
        active = retry
    return rounds


def reservation_mis(
    graph: CSRGraph,
    ranks: Optional[np.ndarray] = None,
    *,
    granularity: Optional[int] = None,
    seed: SeedLike = None,
    machine: Optional[Machine] = None,
) -> MISResult:
    """MIS through :func:`speculative_for` (PBBS ``incrementalMIS`` style).

    Reserve phase: a vertex inspects its earlier neighbors — if any is in
    the set it settles as knocked out; if all are out (or none exist) it
    settles into the set; otherwise it must retry.  There is no shared
    write to reserve, so ``commit`` is trivially "did reserve settle me".
    Returns the lexicographically-first MIS for *ranks*.
    """
    n = graph.num_vertices
    if ranks is None:
        ranks = random_priorities(n, seed)
    ranks = validate_priorities(ranks, n)
    if machine is None:
        machine = Machine()
    if granularity is None:
        granularity = max(1, n // 50)

    status = new_vertex_status(n)
    perm = permutation_from_ranks(ranks)
    offsets, neighbors = graph.offsets, graph.neighbors

    def reserve(i: int) -> bool:
        v = int(perm[i])
        if status[v] != UNDECIDED:
            return False
        nbrs = neighbors[offsets[v]:offsets[v + 1]]
        earlier = nbrs[ranks[nbrs] < ranks[v]]
        if earlier.size and bool((status[earlier] == IN_SET).any()):
            status[v] = KNOCKED_OUT
            return False
        if earlier.size == 0 or bool((status[earlier] != UNDECIDED).all()):
            status[v] = IN_SET
            return False
        return True  # blocked on an undecided earlier neighbor -> commit phase

    def commit(i: int) -> bool:
        return False  # blocked vertices always retry next round

    rounds = speculative_for(
        n, reserve, commit, granularity=granularity, machine=machine
    )
    stats = stats_from_machine(
        "mis/reservations", n, graph.num_edges, machine,
        steps=rounds, rounds=rounds, prefix_size=granularity,
    )
    return MISResult(status=status, ranks=ranks, stats=stats, machine=machine)


def reservation_matching(
    edges: EdgeList,
    ranks: Optional[np.ndarray] = None,
    *,
    granularity: Optional[int] = None,
    seed: SeedLike = None,
    machine: Optional[Machine] = None,
) -> MatchingResult:
    """Maximal matching through :func:`speculative_for` (PBBS ``matching``).

    Reserve: a live edge write-mins its priority index onto both endpoint
    cells.  Commit: if it holds both cells it matches; if an endpoint got
    matched by someone else it dies; otherwise retry.  Returns the
    lexicographically-first matching for *ranks*.
    """
    m = edges.num_edges
    n = edges.num_vertices
    if ranks is None:
        ranks = random_priorities(m, seed)
    ranks = validate_priorities(ranks, m)
    if machine is None:
        machine = Machine()
    if granularity is None:
        granularity = max(1, m // 50)

    status = new_edge_status(m)
    perm = permutation_from_ranks(ranks)
    eu, ev = edges.u, edges.v
    matched_v = np.zeros(n, dtype=bool)
    reservation = np.full(n, m, dtype=np.int64)  # holds priority indices

    def reserve(i: int) -> bool:
        e = int(perm[i])
        if status[e] != EDGE_LIVE:
            return False
        a, b = int(eu[e]), int(ev[e])
        if matched_v[a] or matched_v[b]:
            status[e] = EDGE_DEAD
            return False
        if i < reservation[a]:
            reservation[a] = i
        if i < reservation[b]:
            reservation[b] = i
        return True

    def commit(i: int) -> bool:
        e = int(perm[i])
        a, b = int(eu[e]), int(ev[e])
        holds_a = reservation[a] == i
        holds_b = reservation[b] == i
        # Release this iterate's holds in every branch — a stale hold from
        # a settled edge would block every later contender forever.
        if holds_a:
            reservation[a] = m
        if holds_b:
            reservation[b] = m
        if matched_v[a] or matched_v[b]:
            status[e] = EDGE_DEAD
            return True
        if holds_a and holds_b:
            status[e] = EDGE_MATCHED
            matched_v[a] = True
            matched_v[b] = True
            return True
        return False

    rounds = speculative_for(
        m, reserve, commit, granularity=granularity, machine=machine
    )
    stats = stats_from_machine(
        "mm/reservations", n, m, machine,
        steps=rounds, rounds=rounds, prefix_size=granularity,
    )
    return MatchingResult(
        status=status, edge_u=eu, edge_v=ev, ranks=ranks,
        stats=stats, machine=machine,
    )
