"""Iterated MIS: peel a graph into independent batches (MIS decomposition).

The paper's motivating application (Section 1): tasks with pairwise
conflicts are scheduled by repeatedly extracting a maximal independent set
of the remaining conflict graph — each extraction is one conflict-free
execution round.  The number of batches is at most Δ+1 and often far
smaller.

Determinism carries over: with a fixed per-round priority policy the whole
decomposition is a pure function of the input, regardless of which engine
or schedule computes each MIS.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.mis.api import maximal_independent_set
from repro.core.orderings import random_priorities
from repro.graphs.csr import CSRGraph
from repro.graphs.transforms import induced_subgraph
from repro.util.rng import SeedLike, as_generator, spawn

__all__ = ["mis_decomposition", "is_mis_decomposition"]


def mis_decomposition(
    graph: CSRGraph,
    *,
    seed: SeedLike = None,
    method: str = "prefix",
    max_batches: Optional[int] = None,
) -> List[np.ndarray]:
    """Partition the vertices into maximal-independent-set batches.

    Batch ``k`` is an MIS of the subgraph induced by the vertices that
    survive batches ``0..k-1``; every vertex lands in exactly one batch.

    Parameters
    ----------
    graph:
        The conflict graph.
    seed:
        Seeds the per-round priority orders (round ``k`` uses an
        independent child stream, so the decomposition is reproducible).
    method:
        MIS engine to use per round (any deterministic method yields the
        same decomposition for the same seed).
    max_batches:
        Safety cap; defaults to ``Δ + 2`` (the greedy bound plus slack —
        reaching it would indicate a bug, not a legal input).

    Returns
    -------
    list of int64 arrays
        Original vertex ids per batch, in extraction order.
    """
    n = graph.num_vertices
    if max_batches is None:
        max_batches = graph.max_degree() + 2
    streams = iter(spawn(seed, max_batches))
    batches: List[np.ndarray] = []
    current = graph
    ids = np.arange(n, dtype=np.int64)
    while ids.size:
        if len(batches) >= max_batches:
            raise RuntimeError(
                f"MIS decomposition exceeded {max_batches} batches on a "
                f"max-degree-{graph.max_degree()} graph; this is a bug"
            )
        rng = next(streams)
        ranks = random_priorities(current.num_vertices, rng)
        res = maximal_independent_set(current, ranks, method=method)
        batches.append(ids[res.in_set])
        survivors = ~res.in_set
        current, _ = induced_subgraph(current, survivors)
        ids = ids[survivors]
    return batches


def is_mis_decomposition(graph: CSRGraph, batches: List[np.ndarray]) -> bool:
    """Validate a decomposition: partition + per-batch independence +
    per-batch maximality within the residual graph."""
    n = graph.num_vertices
    seen = np.zeros(n, dtype=bool)
    batch_of = np.full(n, -1, dtype=np.int64)
    for k, batch in enumerate(batches):
        b = np.asarray(batch, dtype=np.int64)
        if b.size == 0:
            return False
        if seen[b].any():
            return False
        seen[b] = True
        batch_of[b] = k
    if not seen.all():
        return False
    src, dst = graph.arcs()
    # Independence inside each batch.
    if bool(np.any(batch_of[src] == batch_of[dst])):
        return False
    # Maximality: a vertex in batch k>0 must have a neighbor in every
    # earlier batch?  No — only in SOME earlier batch per level; the
    # correct residual-maximality condition is: for each vertex v in batch
    # k, for every j < k, v has a neighbor in batch j (otherwise v would
    # have been added to batch j, as batch j is maximal in its residual
    # graph which contains v).
    for v in range(n):
        k = int(batch_of[v])
        if k == 0:
            continue
        nbr_batches = set(batch_of[graph.neighbors_of(v)].tolist())
        if not all(j in nbr_batches for j in range(k)):
            return False
    return True
