"""Greedy graph coloring under a fixed random order.

Sequential rule: process vertices by rank; give each the smallest color
absent among its already-colored (i.e. earlier) neighbors.  The
parallelization (Jones–Plassmann style) colors a vertex as soon as *all*
earlier neighbors are colored — the full priority-DAG peel, whose step
count is exactly the DAG's longest path.

Contrast with MIS: MIS resolves a vertex as soon as *any* earlier neighbor
joins the set (or all are knocked out), so its dependence length can be far
below the longest path.  Coloring has no such shortcut, which is why this
extension reports longest-path steps and the benches can compare the two
schedules on the same inputs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.orderings import (
    permutation_from_ranks,
    random_priorities,
    validate_priorities,
)
from repro.core.result import RunStats, stats_from_machine
from repro.graphs.csr import CSRGraph
from repro.pram.machine import Machine, log2_depth
from repro.util.rng import SeedLike

__all__ = [
    "sequential_greedy_coloring",
    "parallel_greedy_coloring",
    "is_proper_coloring",
]


def _smallest_absent(used: np.ndarray) -> int:
    """Smallest non-negative integer missing from *used* (a small array)."""
    if used.size == 0:
        return 0
    present = np.zeros(used.size + 1, dtype=bool)
    inside = used[used <= used.size]
    present[inside] = True
    return int(np.nonzero(~present)[0][0])


def sequential_greedy_coloring(
    graph: CSRGraph,
    ranks: Optional[np.ndarray] = None,
    *,
    seed: SeedLike = None,
    machine: Optional[Machine] = None,
) -> Tuple[np.ndarray, RunStats]:
    """First-fit coloring in rank order; returns ``(colors, stats)``.

    Uses at most ``Δ + 1`` colors (first-fit's classical guarantee).
    """
    n = graph.num_vertices
    if ranks is None:
        ranks = random_priorities(n, seed)
    ranks = validate_priorities(ranks, n)
    if machine is None:
        machine = Machine()
    colors = np.full(n, -1, dtype=np.int64)
    offsets, neighbors = graph.offsets, graph.neighbors
    work = 0
    machine.begin_round()
    for v in permutation_from_ranks(ranks).tolist():
        nbrs = neighbors[offsets[v]:offsets[v + 1]]
        earlier = nbrs[ranks[nbrs] < ranks[v]]
        colors[v] = _smallest_absent(colors[earlier])
        work += 1 + int(nbrs.size)
    machine.charge(work, depth=work, parallel=False, tag="sequential")
    stats = stats_from_machine("coloring/sequential", n, graph.num_edges, machine,
                               steps=n, rounds=n)
    return colors, stats


def parallel_greedy_coloring(
    graph: CSRGraph,
    ranks: Optional[np.ndarray] = None,
    *,
    seed: SeedLike = None,
    machine: Optional[Machine] = None,
) -> Tuple[np.ndarray, RunStats]:
    """Jones–Plassmann peel: color all ready vertices each step.

    A vertex is *ready* when every earlier neighbor is colored.  Returns
    the identical coloring to :func:`sequential_greedy_coloring` for the
    same *ranks*; ``stats.steps`` equals the priority DAG's longest path.
    """
    n = graph.num_vertices
    if ranks is None:
        ranks = random_priorities(n, seed)
    ranks = validate_priorities(ranks, n)
    if machine is None:
        machine = Machine()
    colors = np.full(n, -1, dtype=np.int64)
    offsets, neighbors = graph.offsets, graph.neighbors
    # Remaining-earlier-neighbor counts drive readiness.
    src, dst = graph.arcs()
    earlier_arc = ranks[dst] < ranks[src]
    pending = np.bincount(src[earlier_arc], minlength=n).astype(np.int64, copy=False)
    ready = np.nonzero(pending == 0)[0].astype(np.int64)
    machine.charge(n + src.size, log2_depth(max(n, 2)), tag="init")
    steps = 0
    machine.begin_round()
    colored = 0
    while ready.size:
        steps += 1
        step_work = int(ready.size)
        # Color each ready vertex from its (already final) earlier nbrs.
        for v in ready.tolist():
            nbrs = neighbors[offsets[v]:offsets[v + 1]]
            earlier = nbrs[ranks[nbrs] < ranks[v]]
            colors[v] = _smallest_absent(colors[earlier])
            step_work += int(nbrs.size)
        colored += int(ready.size)
        # Notify children; those reaching zero become the next frontier.
        c_src, c_dst = graph.gather(ready)
        later = ranks[c_dst] > ranks[c_src]
        children = c_dst[later]
        if children.size:
            np.subtract.at(pending, children, 1)
            candidates = np.unique(children)
            ready = candidates[(pending[candidates] == 0) & (colors[candidates] < 0)]
        else:
            ready = np.empty(0, dtype=np.int64)
        step_work += int(c_src.size)
        machine.charge(step_work, log2_depth(max(step_work, 2)), tag="jp-step")
    assert colored == n, f"coloring peel stalled: {colored}/{n} vertices colored"
    stats = stats_from_machine("coloring/parallel", n, graph.num_edges, machine,
                               steps=steps, rounds=1)
    return colors, stats


def is_proper_coloring(graph: CSRGraph, colors: np.ndarray) -> bool:
    """True iff no edge is monochromatic and every vertex is colored."""
    colors = np.asarray(colors)
    if colors.shape != (graph.num_vertices,) or (colors < 0).any():
        return False
    src, dst = graph.arcs()
    return not bool(np.any(colors[src] == colors[dst]))
