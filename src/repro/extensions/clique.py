"""Lexicographically-first maximal clique — the paper's P-completeness link.

Footnote 1 of the paper: "Cook shows this for [the] problem of
lexicographically first maximal clique, which is equivalent to finding the
MIS on the complement graph."  This module makes that equivalence
executable: the direct greedy clique loop and the MIS-of-complement
reduction must produce identical cliques, which the test suite asserts.

(The complement graph is dense — Θ(n²) edges — so the reduction is a
correctness oracle for small graphs, not a scalable algorithm; the direct
greedy loop is O(n + m·|C|).)
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.orderings import (
    permutation_from_ranks,
    random_priorities,
    validate_priorities,
)
from repro.graphs.builders import from_edges
from repro.graphs.csr import CSRGraph
from repro.util.rng import SeedLike

__all__ = [
    "lexicographically_first_maximal_clique",
    "maximal_clique_via_complement",
    "complement_graph",
    "is_maximal_clique",
]


def complement_graph(graph: CSRGraph) -> CSRGraph:
    """The complement of *graph* (quadratic; intended for small n)."""
    n = graph.num_vertices
    if n > 3000:
        raise ValueError(
            f"complement of an n={n} graph would hold ~n^2/2 edges; "
            "this helper is an oracle for small graphs"
        )
    adj = np.zeros((n, n), dtype=bool)
    src, dst = graph.arcs()
    adj[src, dst] = True
    comp = ~adj
    np.fill_diagonal(comp, False)
    cu, cv = np.nonzero(np.triu(comp, k=1))
    return from_edges(n, cu.astype(np.int64), cv.astype(np.int64))


def lexicographically_first_maximal_clique(
    graph: CSRGraph,
    ranks: Optional[np.ndarray] = None,
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """Greedy maximal clique: take each vertex (in rank order) iff it is
    adjacent to every vertex already taken.  Returns a boolean mask."""
    n = graph.num_vertices
    if ranks is None:
        ranks = random_priorities(n, seed)
    ranks = validate_priorities(ranks, n)
    in_clique = np.zeros(n, dtype=bool)
    clique_size = 0
    offsets, neighbors = graph.offsets, graph.neighbors
    for v in permutation_from_ranks(ranks).tolist():
        nbrs = neighbors[offsets[v]:offsets[v + 1]]
        if int(in_clique[nbrs].sum()) == clique_size:
            in_clique[v] = True
            clique_size += 1
    return in_clique


def maximal_clique_via_complement(
    graph: CSRGraph,
    ranks: Optional[np.ndarray] = None,
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """The Cook reduction: lex-first MIS of the complement graph."""
    from repro.core.mis.sequential import sequential_greedy_mis
    from repro.pram.machine import null_machine

    n = graph.num_vertices
    if ranks is None:
        ranks = random_priorities(n, seed)
    ranks = validate_priorities(ranks, n)
    comp = complement_graph(graph)
    return sequential_greedy_mis(comp, ranks, machine=null_machine()).in_set


def is_maximal_clique(graph: CSRGraph, members) -> bool:
    """True iff *members* is a clique no vertex can extend."""
    mask = np.asarray(members)
    if mask.dtype != bool:
        m2 = np.zeros(graph.num_vertices, dtype=bool)
        m2[mask.astype(np.int64)] = True
        mask = m2
    ids = np.nonzero(mask)[0]
    k = ids.size
    offsets, neighbors = graph.offsets, graph.neighbors
    # Clique: each member is adjacent to the other k-1 members.
    for v in ids.tolist():
        nbrs = neighbors[offsets[v]:offsets[v + 1]]
        if int(mask[nbrs].sum()) != k - 1:
            return False
    # Maximal: no outside vertex is adjacent to all members.
    for v in np.nonzero(~mask)[0].tolist():
        nbrs = neighbors[offsets[v]:offsets[v + 1]]
        if int(mask[nbrs].sum()) == k:
            return False
    return True
