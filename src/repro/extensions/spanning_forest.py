"""Greedy spanning forest under a fixed random edge order.

Sequential rule (Kruskal without weights): process edges by rank; accept an
edge iff its endpoints are in different components.  The step-synchronous
parallelization follows the deterministic-reservations pattern of the
authors' PBBS suite: each step, every live edge write-mins its rank onto
both of its endpoints' component roots; an edge that *owns* (holds the
minimum at) at least one of its roots commits — the owned root is linked
under the other side.  An edge whose endpoints share a component dies.

Why this is safe and sequential-equivalent:

* **No cycles.**  Along any would-be cycle of links ``r1→r2→…→r1``, the
  edge linking ``r_i`` owns ``r_i`` but also wrote at ``r_{i+1}``, whose
  owner therefore has strictly smaller rank — ranks strictly decrease
  around the cycle, a contradiction.
* **Lex-first result.**  By strong induction on rank: while an edge *e* is
  live with distinct components, the first still-undecided earlier edge on
  any earlier-accepted path between its endpoints touches one of *e*'s
  components and out-bids *e* there, and no *later* edge can merge *e*'s
  two components (it would have to own a root *e* wrote at).  So *e* is
  decided against exactly the sequential component structure.

The one-sided rule is what lets a hub component (think star graphs) accept
many leaf edges in one step instead of one per step.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.orderings import (
    permutation_from_ranks,
    random_priorities,
    validate_priorities,
)
from repro.core.result import RunStats, stats_from_machine
from repro.graphs.csr import CSRGraph, EdgeList
from repro.pram.machine import Machine, log2_depth
from repro.util.rng import SeedLike

__all__ = [
    "sequential_spanning_forest",
    "parallel_spanning_forest",
    "is_spanning_forest",
]


class _UnionFind:
    """Array union-find with path halving; used by both engines."""

    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        # Deterministic orientation: larger root under smaller.
        if ra < rb:
            self.parent[rb] = ra
        else:
            self.parent[ra] = rb
        return True


def sequential_spanning_forest(
    edges: EdgeList,
    ranks: Optional[np.ndarray] = None,
    *,
    seed: SeedLike = None,
    machine: Optional[Machine] = None,
) -> Tuple[np.ndarray, RunStats]:
    """Greedy forest in rank order; returns ``(accepted_mask, stats)``."""
    m = edges.num_edges
    if ranks is None:
        ranks = random_priorities(m, seed)
    ranks = validate_priorities(ranks, m)
    if machine is None:
        machine = Machine()
    uf = _UnionFind(edges.num_vertices)
    accepted = np.zeros(m, dtype=bool)
    eu, ev = edges.u, edges.v
    work = 0
    machine.begin_round()
    for e in permutation_from_ranks(ranks).tolist():
        work += 1
        if uf.union(int(eu[e]), int(ev[e])):
            accepted[e] = True
    machine.charge(work, depth=work, parallel=False, tag="sequential")
    stats = stats_from_machine("forest/sequential", edges.num_vertices, m, machine,
                               steps=m, rounds=m)
    return accepted, stats


def parallel_spanning_forest(
    edges: EdgeList,
    ranks: Optional[np.ndarray] = None,
    *,
    seed: SeedLike = None,
    machine: Optional[Machine] = None,
) -> Tuple[np.ndarray, RunStats]:
    """Step-synchronous commit; identical forest to the sequential engine.

    ``stats.steps`` is the number of commit rounds — the forest analogue of
    the dependence length the benches track across graph families.
    """
    m = edges.num_edges
    n = edges.num_vertices
    if ranks is None:
        ranks = random_priorities(m, seed)
    ranks = validate_priorities(ranks, m)
    if machine is None:
        machine = Machine()
    parent = np.arange(n, dtype=np.int64)
    accepted = np.zeros(m, dtype=bool)
    live = np.arange(m, dtype=np.int64)
    eu, ev = edges.u, edges.v
    min_at = np.full(n, m, dtype=np.int64)
    steps = 0
    machine.begin_round()
    while live.size:
        steps += 1
        # Fully compress the component forest by pointer jumping (depth
        # halves per sweep, so O(log n) sweeps of O(n) vectorized work).
        while True:
            gp = parent[parent]
            if np.array_equal(gp, parent):
                break
            parent = gp
        ru = parent[eu[live]]
        rv = parent[ev[live]]
        same = ru == rv
        live_now = live[~same]
        ru, rv = ru[~same], rv[~same]
        lr = ranks[live_now]
        if live_now.size:
            touched = np.concatenate([ru, rv])
            min_at[touched] = m
            np.minimum.at(min_at, ru, lr)
            np.minimum.at(min_at, rv, lr)
        own_u = min_at[ru] == lr
        own_v = min_at[rv] == lr
        winners_mask = own_u | own_v
        # Ownership is exclusive per root (write-min of distinct ranks),
        # so the scatter-writes below never collide.
        both = own_u & own_v
        hi = np.maximum(ru[both], rv[both])
        lo = np.minimum(ru[both], rv[both])
        parent[hi] = lo
        only_u = own_u & ~own_v
        parent[ru[only_u]] = rv[only_u]
        only_v = own_v & ~own_u
        parent[rv[only_v]] = ru[only_v]
        accepted[live_now[winners_mask]] = True
        machine.charge(
            3 * live.size + int(np.count_nonzero(winners_mask)),
            log2_depth(max(int(live.size), 2)),
            tag="forest-step",
        )
        live = live_now[~winners_mask]
    stats = stats_from_machine("forest/parallel", n, m, machine,
                               steps=steps, rounds=1)
    return accepted, stats


def is_spanning_forest(edges: EdgeList, accepted: np.ndarray) -> bool:
    """True iff *accepted* is acyclic and spans every component.

    Checked by counting: a forest on the graph's components has exactly
    ``n - #components`` edges, and acyclicity follows if unioning the
    accepted edges never finds a cycle.
    """
    accepted = np.asarray(accepted, dtype=bool)
    if accepted.shape != (edges.num_edges,):
        return False
    uf = _UnionFind(edges.num_vertices)
    for e in np.nonzero(accepted)[0].tolist():
        if not uf.union(int(edges.u[e]), int(edges.v[e])):
            return False  # cycle
    # Spanning: every edge's endpoints must be connected in the forest.
    for e in range(edges.num_edges):
        if uf.find(int(edges.u[e])) != uf.find(int(edges.v[e])):
            return False
    return True
