"""Extensions: the paper's §7 direction, applied.

"We believe that our approach can be applied to sequential greedy
algorithms for other problems (e.g. spanning forest) and this is a
direction for future work."  This subpackage carries the program out for
two classic greedy loops:

* :mod:`repro.extensions.coloring` — greedy graph coloring.  The parallel
  schedule here must respect *every* earlier-neighbor dependence (a vertex
  needs all earlier neighbors' colors), so its step count is the longest
  path of the priority DAG rather than the MIS dependence length — a
  measurably different (but still polylog for random orders on bounded
  degree) quantity the benches contrast.
* :mod:`repro.extensions.spanning_forest` — greedy (Kruskal-order)
  spanning forest with a step-synchronous commit rule: an edge commits
  when it is the highest-priority live edge on *both* of its endpoints'
  components.  Returns the identical forest to the sequential loop.
"""

from repro.extensions.coloring import (
    sequential_greedy_coloring,
    parallel_greedy_coloring,
    is_proper_coloring,
)
from repro.extensions.spanning_forest import (
    sequential_spanning_forest,
    parallel_spanning_forest,
    is_spanning_forest,
)
from repro.extensions.reservations import (
    speculative_for,
    reservation_mis,
    reservation_matching,
)
from repro.extensions.clique import (
    lexicographically_first_maximal_clique,
    maximal_clique_via_complement,
    is_maximal_clique,
)
from repro.extensions.iterated_mis import mis_decomposition, is_mis_decomposition

__all__ = [
    "speculative_for",
    "reservation_mis",
    "reservation_matching",
    "lexicographically_first_maximal_clique",
    "maximal_clique_via_complement",
    "is_maximal_clique",
    "mis_decomposition",
    "is_mis_decomposition",
    "sequential_greedy_coloring",
    "parallel_greedy_coloring",
    "is_proper_coloring",
    "sequential_spanning_forest",
    "parallel_spanning_forest",
    "is_spanning_forest",
]
