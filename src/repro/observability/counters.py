"""Perf counters around the :mod:`repro.kernels.frontier` primitives.

:class:`KernelCounters` is a context manager that wraps each frontier
kernel with a thin recorder — call count, elements processed, cumulative
wall time — and patches the wrapper into the kernel's definition site
*and* every module that imported the kernel by name (the same patching
discipline as :class:`repro.robustness.faults.ChaosInjector`; a
``from ... import frontier_gather`` binds the name locally, so patching
only ``repro.kernels.frontier`` would miss the engines).

Element counts come from the size of each kernel's natural input: the
frontier for the gathers and cursor advances, the candidate/values array
for dedup, decrement and segment-min.  The wrappers cost one clock pair
and a dict update per call — negligible next to the kernels themselves,
but this is an opt-in measurement tool, not an always-on path.

Example
-------
>>> from repro.observability import KernelCounters
>>> from repro.graphs.generators import cycle_graph
>>> from repro.core.mis import maximal_independent_set
>>> with KernelCounters() as kc:
...     _ = maximal_independent_set(cycle_graph(64), seed=0, method="rootset-vec")
>>> kc.counters["frontier_gather"].calls > 0
True
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.util.tables import format_table

__all__ = ["KernelCounter", "KernelCounters", "KERNEL_NAMES"]

#: Wrapped kernels and the positional index of the argument whose length
#: is "elements processed" for that kernel.
_ELEMENT_ARG: Dict[str, int] = {
    "scatter_distinct": 0,   # values
    "frontier_gather": 2,    # frontier
    "range_gather": 3,       # frontier
    "stamp_dedup": 0,        # candidates
    "decrement_counts": 1,   # targets
    "advance_cursors": 5,    # frontier
    "sorted_segment_min": 1, # values
}

#: Names of the wrapped frontier kernels.
KERNEL_NAMES: Tuple[str, ...] = tuple(_ELEMENT_ARG)

# Definition site first, then every module that binds kernel names
# locally via ``from repro.kernels... import ...``.  Engine modules are
# imported lazily inside __enter__ so this module stays below the core
# layer at import time.
_PATCH_MODULES = (
    "repro.kernels.frontier",
    "repro.kernels",
    "repro.core.mis.parallel",
    "repro.core.mis.rootset_vectorized",
    "repro.core.matching.rootset_vectorized",
)


@dataclass
class KernelCounter:
    """Running totals for one kernel."""

    calls: int = 0
    elements: int = 0
    seconds: float = 0.0


class KernelCounters:
    """Context manager recording per-kernel call/element/time totals.

    Not reentrant: entering an already-active instance raises.  Nesting
    two *different* instances works (each layer unwraps to what it saw),
    but the inner one then measures the outer one's wrappers; prefer one
    at a time.
    """

    def __init__(
        self,
        kernels: Optional[Sequence[str]] = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        names = tuple(kernels) if kernels is not None else KERNEL_NAMES
        unknown = [n for n in names if n not in _ELEMENT_ARG]
        if unknown:
            raise ValueError(
                f"unknown kernel(s) {unknown}; expected a subset of {KERNEL_NAMES}"
            )
        self._names = names
        self._clock = clock
        self.counters: Dict[str, KernelCounter] = {n: KernelCounter() for n in names}
        self._saved: List[Tuple[object, str, Callable]] = []
        self._active = False

    def _wrap(self, name: str, fn: Callable) -> Callable:
        counter = self.counters[name]
        elem_arg = _ELEMENT_ARG[name]
        clock = self._clock

        def wrapper(*args, **kwargs):
            start = clock()
            try:
                return fn(*args, **kwargs)
            finally:
                counter.seconds += clock() - start
                counter.calls += 1
                if elem_arg < len(args):
                    arg = args[elem_arg]
                    counter.elements += int(getattr(arg, "size", 0) or 0)

        wrapper.__name__ = fn.__name__
        wrapper.__wrapped__ = fn
        return wrapper

    def __enter__(self) -> "KernelCounters":
        if self._active:
            raise RuntimeError("KernelCounters is not reentrant")
        kernels_mod = importlib.import_module("repro.kernels.frontier")
        wrappers = {
            name: self._wrap(name, getattr(kernels_mod, name))
            for name in self._names
        }
        for mod_name in _PATCH_MODULES:
            module = importlib.import_module(mod_name)
            for name, wrapper in wrappers.items():
                if hasattr(module, name):
                    self._saved.append((module, name, getattr(module, name)))
                    setattr(module, name, wrapper)
        self._active = True
        return self

    def __exit__(self, *exc) -> None:
        for module, name, original in reversed(self._saved):
            setattr(module, name, original)
        self._saved.clear()
        self._active = False

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict copy of the totals (JSON-serializable)."""
        return {
            name: {"calls": c.calls, "elements": c.elements, "seconds": c.seconds}
            for name, c in self.counters.items()
        }

    @property
    def total_calls(self) -> int:
        return sum(c.calls for c in self.counters.values())

    @property
    def total_elements(self) -> int:
        return sum(c.elements for c in self.counters.values())

    def format(self) -> str:
        """Fixed-width table of the non-zero counters (all, if none fired)."""
        rows = [
            [name, c.calls, c.elements, f"{c.seconds * 1e3:.3f}"]
            for name, c in self.counters.items()
            if c.calls > 0
        ] or [
            [name, 0, 0, "0.000"] for name in self._names
        ]
        return format_table(["kernel", "calls", "elements", "ms"], rows)
