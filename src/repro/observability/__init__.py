"""Observability layer: per-round telemetry, kernel counters, trace sinks.

The paper's central quantities — dependence length per round, frontier
sizes, redundant work under prefix schedules — were previously only
visible as end-of-run aggregates in :class:`~repro.core.result.RunStats`.
This package makes them streamable:

* :mod:`repro.observability.tracer` — a :class:`Tracer` that every engine
  accepts via ``tracer=`` and feeds one :class:`RoundRecord` per
  synchronous step (round index, frontier size, newly-decided items, work
  and depth charged, wall time), plus pluggable sinks
  (:class:`MemorySink`, :class:`JSONLSink`, :class:`NullSink`) and replay
  helpers (:func:`read_trace`, :func:`frontier_series`,
  :func:`trace_summary`).
* :mod:`repro.observability.counters` — :class:`KernelCounters`, a
  context manager wrapping the :mod:`repro.kernels.frontier` primitives
  with call counts, elements processed, and cumulative wall time.

Layering: this package sits above ``util``/``errors``/``pram``/``kernels``
and below ``core`` — engines import the tracer, never the reverse.  With
no tracer attached the engines pay one ``is not None`` check per step.
"""

from repro.observability.tracer import (
    JSONLSink,
    MemorySink,
    NullSink,
    RoundRecord,
    Tracer,
    frontier_series,
    read_trace,
    round_records,
    trace_summary,
)
from repro.observability.counters import KernelCounter, KernelCounters

__all__ = [
    "Tracer",
    "RoundRecord",
    "MemorySink",
    "JSONLSink",
    "NullSink",
    "read_trace",
    "round_records",
    "frontier_series",
    "trace_summary",
    "KernelCounter",
    "KernelCounters",
]
