"""Structured per-round telemetry: :class:`Tracer`, sinks, replay helpers.

A :class:`Tracer` is handed to an engine via its ``tracer=`` keyword.  The
engine calls :meth:`Tracer.begin_run` once, :meth:`Tracer.round` once per
synchronous step (for the step-synchronous engines the number of ``round``
events equals ``RunStats.steps``), and :meth:`Tracer.end_run` when done.
Each round event is a :class:`RoundRecord`; events flow into a pluggable
sink:

* :class:`MemorySink` — appends event dicts to a list (the default);
* :class:`JSONLSink` — streams one JSON object per line to a file;
* :class:`NullSink` — drops everything (useful to measure tracer overhead
  in isolation; it allocates nothing per event).

With ``charges=True`` the tracer also attaches to the run's
:class:`~repro.pram.machine.Machine` and mirrors every
:class:`~repro.pram.machine.StepRecord` as a ``charge`` event, so one
trace covers both the algorithmic rounds and the cost-model charges.

Accounting notes.  Work/depth per round are deltas of the machine
totals between consecutive ``round`` calls, so the first record absorbs
any setup charges (priority generation, partition builds).  The
``decided`` field counts items the engine observed becoming decided
during that step's frontier resolution; engines that finalize stragglers
outside synchronous steps (e.g. the prefix matching engine's stale-edge
sweep) do not attribute those to any round.

Replay: :func:`read_trace` loads a JSONL file back into event dicts,
:func:`frontier_series` extracts the per-round frontier sizes (the
quantity the acceptance tests compare bit-identically across engines and
re-runs), and :func:`trace_summary` renders a fixed-width table.
"""

from __future__ import annotations

import io
import json
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.util.tables import format_table

__all__ = [
    "RoundRecord",
    "Sink",
    "MemorySink",
    "JSONLSink",
    "NullSink",
    "Tracer",
    "read_trace",
    "round_records",
    "frontier_series",
    "trace_summary",
]


@dataclass(frozen=True)
class RoundRecord:
    """One synchronous step as observed by the tracer.

    Attributes
    ----------
    index:
        0-based round index within the run (``round`` events per run are
        consecutive from 0).
    frontier:
        Number of items active in this step (roots/live vertices for MIS
        engines, ready/live edges for matching engines; 1 for the
        sequential engines, which visit one slot per step).
    decided:
        Items newly decided during this step (selected plus knocked-out /
        killed), as observed by the engine.
    selected:
        Items accepted into the result this step (MIS vertices / matched
        edges).
    work, depth:
        Cost-model charge attributed to this round (machine-total deltas,
        or engine-supplied exact values for the sequential engines).
    wall_time:
        Seconds of wall clock since the previous round event (or since
        ``begin_run`` for round 0).
    tag:
        Optional engine-specific label (e.g. ``"peel"``, ``"inner"``).
    """

    index: int
    frontier: int
    decided: int
    selected: int
    work: int
    depth: int
    wall_time: float
    tag: str = ""


class Sink:
    """Event consumer interface: one :meth:`emit` call per event dict."""

    __slots__ = ()

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources.  Default: nothing to do."""


class MemorySink(Sink):
    """Collect event dicts in :attr:`events` (a plain list)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)


class NullSink(Sink):
    """Discard every event without allocating anything."""

    __slots__ = ()

    def emit(self, event: Dict[str, Any]) -> None:
        pass


class JSONLSink(Sink):
    """Stream events as JSON Lines: one compact object per line.

    Accepts a path (opened for writing, closed by :meth:`close`) or any
    text file object (left open; caller owns it).  Usable as a context
    manager.
    """

    __slots__ = ("_fh", "_owns")

    def __init__(self, path_or_file: Union[str, "io.TextIOBase"]) -> None:
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns = True

    def emit(self, event: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, separators=(",", ":")))
        self._fh.write("\n")

    def close(self) -> None:
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Tracer:
    """Per-run event emitter the engines drive.

    Parameters
    ----------
    sink:
        Event consumer; defaults to a fresh :class:`MemorySink`.
    charges:
        When true, :meth:`begin_run` attaches the tracer to the run's
        machine and every ``Machine.charge`` is mirrored as a ``charge``
        event (verbose; off by default).
    clock:
        Monotonic clock used for ``wall_time`` (injectable for tests).

    One tracer may observe several consecutive runs (e.g. a bench sweep):
    ``begin_run`` resets the per-run round index.  :attr:`rounds` is the
    number of round events emitted for the current/most recent run, and
    :attr:`runs` counts completed ``begin_run`` calls.
    """

    __slots__ = (
        "sink", "charges", "_clock", "_index", "_algorithm",
        "_machine", "_base_work", "_base_depth", "_last_time", "runs",
    )

    def __init__(
        self,
        sink: Optional[Sink] = None,
        *,
        charges: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.sink = sink if sink is not None else MemorySink()
        self.charges = charges
        self._clock = clock
        self._index = 0
        self._algorithm = ""
        self._machine = None
        self._base_work = 0
        self._base_depth = 0
        self._last_time = 0.0
        self.runs = 0

    @property
    def rounds(self) -> int:
        """Round events emitted so far for the current run."""
        return self._index

    def begin_run(self, algorithm: str, n: int, m: int, *, machine=None) -> None:
        """Start a run: snapshot machine totals, emit a ``run-begin`` event."""
        self._algorithm = algorithm
        self._index = 0
        self._machine = machine
        if machine is not None:
            self._base_work = machine.work
            self._base_depth = machine.depth
        self._last_time = self._clock()
        self.runs += 1
        self.sink.emit(
            {"event": "run-begin", "algorithm": algorithm, "n": int(n), "m": int(m)}
        )
        if self.charges and machine is not None:
            machine.attach_tracer(self)

    def round(
        self,
        *,
        frontier: int,
        decided: int = 0,
        selected: int = 0,
        work: Optional[int] = None,
        depth: Optional[int] = None,
        tag: str = "",
    ) -> RoundRecord:
        """Record one synchronous step and forward it to the sink.

        ``work``/``depth`` default to the delta of the run machine's
        totals since the previous round event; the sequential engines,
        which charge the machine once at the end, pass exact per-step
        values instead.
        """
        now = self._clock()
        if work is None:
            if self._machine is not None:
                total_work = self._machine.work
                total_depth = self._machine.depth
                work = total_work - self._base_work
                depth = total_depth - self._base_depth
                self._base_work = total_work
                self._base_depth = total_depth
            else:
                work = 0
        if depth is None:
            depth = 0
        record = RoundRecord(
            index=self._index,
            frontier=int(frontier),
            decided=int(decided),
            selected=int(selected),
            work=int(work),
            depth=int(depth),
            wall_time=now - self._last_time,
            tag=tag,
        )
        self._last_time = now
        self._index += 1
        event = asdict(record)
        event["event"] = "round"
        self.sink.emit(event)
        return record

    def charge_event(self, step) -> None:
        """Mirror one :class:`~repro.pram.machine.StepRecord` (charges mode)."""
        if not self.charges:
            return
        self.sink.emit({
            "event": "charge",
            "tag": step.tag,
            "work": int(step.work),
            "depth": int(step.depth),
            "parallel": bool(step.parallel),
            "round": int(step.round_index),
        })

    def end_run(self, stats=None) -> None:
        """Finish a run: emit ``run-end`` (with stats) and detach."""
        event: Dict[str, Any] = {
            "event": "run-end",
            "algorithm": self._algorithm,
            "rounds": self._index,
        }
        if stats is not None:
            event.update(
                steps=int(stats.steps),
                work=int(stats.work),
                depth=int(stats.depth),
            )
        self.sink.emit(event)
        if self.charges and self._machine is not None:
            self._machine.detach_tracer()
        self._machine = None


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def round_records(events: Iterable[Dict[str, Any]]) -> List[RoundRecord]:
    """Extract the ``round`` events as :class:`RoundRecord` objects."""
    records = []
    for event in events:
        if event.get("event") == "round":
            fields = {k: v for k, v in event.items() if k != "event"}
            records.append(RoundRecord(**fields))
    return records


def frontier_series(events: Iterable[Dict[str, Any]]) -> List[int]:
    """Per-round frontier sizes, in round order.

    This is the replay quantity the determinism tests compare: two runs
    of the same deterministic engine on the same input must produce
    bit-identical series.
    """
    return [e["frontier"] for e in events if e.get("event") == "round"]


def trace_summary(
    events: Sequence[Dict[str, Any]], *, max_rounds: int = 20
) -> str:
    """Fixed-width per-round table of a trace (head + tail past *max_rounds*)."""
    records = round_records(events)
    header = ["round", "frontier", "selected", "decided", "work", "depth", "ms"]
    if not records:
        return format_table(header, []) + "\n(no round events)"

    def row(r: RoundRecord) -> List[str]:
        return [
            str(r.index), str(r.frontier), str(r.selected), str(r.decided),
            str(r.work), str(r.depth), f"{r.wall_time * 1e3:.3f}",
        ]

    if len(records) <= max_rounds:
        rows = [row(r) for r in records]
    else:
        head = max_rounds // 2
        tail = max_rounds - head
        rows = [row(r) for r in records[:head]]
        rows.append(["..."] * len(header))
        rows.extend(row(r) for r in records[-tail:])
    lines = [format_table(header, rows)]
    total_wall = sum(r.wall_time for r in records)
    lines.append(
        f"{len(records)} rounds, {sum(r.selected for r in records)} selected, "
        f"{sum(r.work for r in records)} work, {total_wall * 1e3:.3f} ms"
    )
    return "\n".join(lines)
