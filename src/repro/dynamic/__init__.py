"""Dynamic graphs: incremental greedy MIS/MM, streaming, and session state.

The paper's priority-DAG structure makes greedy maintenance *local*: an
edge mutation only perturbs the DAG region reachable from its endpoints
toward higher ranks.  This package exploits that three ways:

* :mod:`repro.dynamic.incremental` —
  :class:`~repro.dynamic.incremental.IncrementalMIS` /
  :class:`~repro.dynamic.incremental.IncrementalMatching` maintainers
  that re-peel only the affected region per mutation batch,
  bit-identical to from-scratch sequential greedy on the mutated graph.
* :mod:`repro.dynamic.streaming` — batched edge-arrival ingestion over
  either maintainer.
* :mod:`repro.dynamic.jobs` + :mod:`repro.dynamic.store` — the
  pure (state, batch) → (state', stats) worker entry points and the
  atomic snapshot store that let :class:`repro.service.SolverService`
  serve maintainers as long-lived crash-safe sessions.

Layering: sits above :mod:`repro.core`/:mod:`repro.graphs` and below
:mod:`repro.service` (which imports it lazily in workers).
"""

from repro.dynamic.incremental import IncrementalMIS, IncrementalMatching, edge_priority
from repro.dynamic.streaming import stream_edges
from repro.dynamic.store import SnapshotStore
from repro.dynamic import incremental, jobs, store, streaming

__all__ = [
    "IncrementalMIS",
    "IncrementalMatching",
    "edge_priority",
    "stream_edges",
    "SnapshotStore",
    "incremental",
    "jobs",
    "store",
    "streaming",
]
