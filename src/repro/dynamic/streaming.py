"""Streaming edge-arrival mode over the incremental maintainers.

A stream is just a sequence of edge arrivals; grouping them into batches
amortizes the re-peel per batch exactly the way the relaxed-scheduler
literature treats iterative updates.  :func:`stream_edges` drives either
maintainer through an arbitrary iterable of ``(u, v)`` pairs and yields
one dynamic-stats dict per flushed batch, so callers can watch the
affected-region trajectory as the graph densifies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple, Union

from repro.dynamic.incremental import IncrementalMatching, IncrementalMIS
from repro.util.validation import check_positive_int

__all__ = ["stream_edges"]

Maintainer = Union[IncrementalMIS, IncrementalMatching]


def stream_edges(
    maintainer: Maintainer,
    edges: Iterable[Tuple[int, int]],
    *,
    batch_size: int = 64,
) -> Iterator[Dict[str, object]]:
    """Feed arriving edges to *maintainer* in batches of *batch_size*.

    Yields the :meth:`~repro.dynamic.incremental.IncrementalMIS.apply_batch`
    stats dict after every flush (a final partial batch included).  The
    maintained answer is a verified greedy fixpoint after each yield, so
    a consumer may stop at any batch boundary with a consistent result.

    Edges already present raise
    :class:`~repro.errors.InvalidGraphError` (streams are arrivals of
    *new* edges; dedup upstream if the source replays).

    Examples
    --------
    >>> from repro.graphs.generators import empty_graph
    >>> import numpy as np
    >>> inc = IncrementalMIS(empty_graph(4), np.arange(4))
    >>> arrivals = [(0, 1), (1, 2), (2, 3)]
    >>> total = sum(s["inserted"] for s in stream_edges(inc, arrivals, batch_size=2))
    >>> total
    3
    """
    batch_size = check_positive_int(batch_size, "batch_size")
    pending = []
    for edge in edges:
        pending.append(edge)
        if len(pending) >= batch_size:
            yield maintainer.apply_batch(insertions=pending)
            pending = []
    if pending:
        yield maintainer.apply_batch(insertions=pending)
