"""Incremental greedy MIS/MM under edge insertions and deletions.

The paper's priority-DAG view makes greedy maintenance local: vertex ``v``
is in the lexicographically-first MIS iff no earlier-ranked neighbor is,
so an edge mutation can only change the answer inside the DAG region
reachable (toward higher ranks) from the mutated endpoints.  The
maintainers here apply a batch of mutations structurally, seed a dirty
set with the directly perturbed items, and **re-peel only that region**
in rank order:

* pop the dirty item of minimum rank — all of its earlier-ranked
  neighbors are already final, so its greedy decision can be recomputed
  exactly;
* if the decision flipped, every higher-ranked neighbor becomes dirty.

Processing in rank order re-establishes the unique greedy fixpoint, so
the maintained answer is **bit-identical** to running sequential greedy
from scratch on the mutated graph (the mutation-parity suite asserts
this after every batch, against the ``rootset-vec`` / ``parallel-vec``
engines too).

Work accounting: each batch records the affected-region size (items
popped), the flips, the arcs scanned, and the incremental-vs-scratch
work ratio against the ``items + 2·arcs`` cost a from-scratch peel would
pay — the ``aux["dynamic"]`` block that flows through session results
into ``BENCH_9.json``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.orderings import random_priorities
from repro.core.result import MISResult, MatchingResult, RunStats
from repro.core.status import EDGE_DEAD, EDGE_MATCHED, IN_SET, KNOCKED_OUT
from repro.errors import InvalidGraphError, InvariantViolationError
from repro.graphs.builders import from_edges
from repro.graphs.csr import CSRGraph, EdgeList
from repro.robustness.validate import check_ranks
from repro.util.rng import SeedLike

__all__ = ["IncrementalMIS", "IncrementalMatching", "edge_priority"]

EdgePair = Tuple[int, int]

_MASK64 = (1 << 64) - 1


def edge_priority(seed: int, u: int, v: int) -> int:
    """Deterministic 62-bit priority for edge ``{u, v}`` under *seed*.

    A splitmix64-style integer mix — a pure function of ``(seed, u, v)``
    with no process-level state, so a session replayed after a worker
    crash (or restored from a snapshot on another host) draws identical
    priorities for identical insertions.
    """
    x = (int(seed) * 0x9E3779B97F4A7C15 + (u << 32 | (v & 0xFFFFFFFF)) + v) & _MASK64
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return z >> 2  # 62 bits: stays clear of int64 trouble downstream


def _canon_pair(u: object, v: object, n: int, context: str) -> EdgePair:
    try:
        a, b = int(u), int(v)
    except (TypeError, ValueError) as exc:
        raise InvalidGraphError(f"{context}: non-integer endpoint ({u!r}, {v!r})") from exc
    if a == b:
        raise InvalidGraphError(f"{context}: self-loop ({a}, {b})")
    if not (0 <= a < n and 0 <= b < n):
        raise InvalidGraphError(
            f"{context}: endpoints ({a}, {b}) out of range [0, {n})"
        )
    return (a, b) if a < b else (b, a)


def _check_batch(
    insertions: Sequence[EdgePair],
    deletions: Sequence[EdgePair],
    n: int,
) -> Tuple[List[EdgePair], List[EdgePair]]:
    """Canonicalize a mutation batch; reject self-loops and in-batch dupes."""
    ins = [_canon_pair(u, v, n, "insert") for (u, v) in insertions]
    dels = [_canon_pair(u, v, n, "delete") for (u, v) in deletions]
    seen: Set[EdgePair] = set()
    for pair in ins + dels:
        if pair in seen:
            raise InvalidGraphError(f"batch mentions edge {pair} twice")
        seen.add(pair)
    return ins, dels


class _DynamicCounters:
    """Per-batch and cumulative re-peel accounting shared by both maintainers."""

    __slots__ = ("batches", "total_work", "total_scratch_work", "last")

    def __init__(self) -> None:
        self.batches = 0
        self.total_work = 0
        self.total_scratch_work = 0
        self.last: Dict[str, object] = {}

    def record(
        self,
        *,
        inserted: int,
        deleted: int,
        affected: int,
        flipped: int,
        scanned_arcs: int,
        items: int,
        arcs: int,
    ) -> Dict[str, object]:
        work = affected + scanned_arcs
        scratch = items + 2 * arcs
        self.batches += 1
        self.total_work += work
        self.total_scratch_work += scratch
        self.last = {
            "inserted": inserted,
            "deleted": deleted,
            "affected": affected,
            "flipped": flipped,
            "scanned_arcs": scanned_arcs,
            "work": work,
            "scratch_work": scratch,
            "work_ratio": (work / scratch) if scratch else 0.0,
        }
        return dict(self.last)

    def aux(self) -> Dict[str, object]:
        """The ``aux["dynamic"]`` block attached to session results."""
        total_scratch = self.total_scratch_work
        return {
            "batches": self.batches,
            "total_work": self.total_work,
            "total_scratch_work": total_scratch,
            "total_work_ratio": (self.total_work / total_scratch) if total_scratch else 0.0,
            "last_batch": dict(self.last),
        }

    def load(self, data: Dict[str, object]) -> None:
        self.batches = int(data.get("batches", 0))
        self.total_work = int(data.get("total_work", 0))
        self.total_scratch_work = int(data.get("total_scratch_work", 0))
        self.last = dict(data.get("last_batch", {}))


class IncrementalMIS:
    """Maintain the lexicographically-first MIS under edge mutations.

    Parameters
    ----------
    graph:
        Initial :class:`~repro.graphs.csr.CSRGraph` (may be edgeless).
    ranks:
        Vertex priority permutation of ``0..n-1``; random from *seed*
        when omitted.  The vertex set is fixed for the session's
        lifetime, so the permutation stays valid across edge mutations.
    seed:
        Randomness for *ranks* when omitted.

    The initial answer is computed by a full peel (every vertex dirty),
    which is exactly sequential greedy; :meth:`apply_batch` then re-peels
    only the affected priority-DAG region per mutation batch.

    Examples
    --------
    >>> from repro.graphs.generators import path_graph
    >>> import numpy as np
    >>> inc = IncrementalMIS(path_graph(4), np.arange(4))
    >>> sorted(inc.members())
    [0, 2]
    >>> _ = inc.apply_batch(insertions=[(0, 2)])
    >>> sorted(inc.members())
    [0, 3]
    """

    problem = "mis"

    def __init__(
        self,
        graph: CSRGraph,
        ranks: Optional[np.ndarray] = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        n = graph.num_vertices
        if ranks is None:
            ranks = random_priorities(n, seed)
        ranks = check_ranks(ranks, n)
        self.n = n
        self.ranks = ranks.copy()
        self._rank = ranks.tolist()
        self._adj: List[Set[int]] = [set() for _ in range(n)]
        el = graph.edge_list()
        for a, b in zip(el.u.tolist(), el.v.tolist()):
            self._adj[a].add(b)
            self._adj[b].add(a)
        self.m = el.num_edges
        self.status = np.full(n, KNOCKED_OUT, dtype=np.int8)
        self.counters = _DynamicCounters()
        self._graph_cache: Optional[CSRGraph] = graph
        self._peel(range(n))

    # -- mutation --------------------------------------------------------

    def apply_batch(
        self,
        insertions: Sequence[EdgePair] = (),
        deletions: Sequence[EdgePair] = (),
    ) -> Dict[str, object]:
        """Apply one mutation batch and re-peel the affected region.

        Insertions must not already exist and deletions must; violations
        (and self-loops, out-of-range endpoints, in-batch duplicates)
        raise :class:`~repro.errors.InvalidGraphError` **before** any
        structural change, so a rejected batch leaves the session intact.

        Returns the per-batch dynamic stats dict (affected-region size,
        flips, scanned arcs, work ratio).
        """
        ins, dels = _check_batch(insertions, deletions, self.n)
        for a, b in ins:
            if b in self._adj[a]:
                raise InvalidGraphError(f"insert: edge ({a}, {b}) already present")
        for a, b in dels:
            if b not in self._adj[a]:
                raise InvalidGraphError(f"delete: edge ({a}, {b}) not present")
        rank = self._rank
        seeds: Set[int] = set()
        for a, b in ins:
            self._adj[a].add(b)
            self._adj[b].add(a)
            seeds.add(a if rank[a] > rank[b] else b)
        for a, b in dels:
            self._adj[a].discard(b)
            self._adj[b].discard(a)
            seeds.add(a if rank[a] > rank[b] else b)
        self.m += len(ins) - len(dels)
        self._graph_cache = None
        affected, flipped, scanned = self._peel(seeds)
        return self.counters.record(
            inserted=len(ins),
            deleted=len(dels),
            affected=affected,
            flipped=flipped,
            scanned_arcs=scanned,
            items=self.n,
            arcs=self.m,
        )

    def _peel(self, dirty: Iterable[int]) -> Tuple[int, int, int]:
        """Re-peel *dirty* (and everything they flip) in rank order."""
        rank = self._rank
        status = self.status
        adj = self._adj
        heap = [(rank[v], v) for v in dirty]
        heapq.heapify(heap)
        queued = {v for (_, v) in heap}
        affected = flipped = scanned = 0
        while heap:
            rv, v = heapq.heappop(heap)
            queued.discard(v)
            affected += 1
            new = IN_SET
            for w in adj[v]:
                scanned += 1
                if rank[w] < rv and status[w] == IN_SET:
                    new = KNOCKED_OUT
                    break
            if status[v] == new:
                continue
            status[v] = new
            flipped += 1
            for w in adj[v]:
                scanned += 1
                if rank[w] > rv and w not in queued:
                    queued.add(w)
                    heapq.heappush(heap, (rank[w], w))
        return affected, flipped, scanned

    # -- queries ---------------------------------------------------------

    def members(self) -> List[int]:
        """Current independent-set vertex ids (sorted)."""
        return np.nonzero(self.status == IN_SET)[0].tolist()

    def graph(self) -> CSRGraph:
        """The current mutated graph as a CSR (cached between mutations)."""
        if self._graph_cache is None:
            us = []
            vs = []
            for a in range(self.n):
                for b in self._adj[a]:
                    if a < b:
                        us.append(a)
                        vs.append(b)
            self._graph_cache = from_edges(
                self.n,
                np.asarray(us, dtype=np.int64),
                np.asarray(vs, dtype=np.int64),
            )
        return self._graph_cache

    def result(self) -> MISResult:
        """Current answer as a :class:`~repro.core.result.MISResult`.

        ``stats.aux["dynamic"]`` carries the cumulative and last-batch
        re-peel accounting.
        """
        aux = {"dynamic": self.counters.aux()}
        stats = RunStats(
            algorithm="mis/incremental",
            n=self.n,
            m=self.m,
            work=self.counters.total_work,
            depth=self.counters.total_work,
            steps=self.counters.batches,
            rounds=self.counters.batches,
            aux=aux,
        )
        return MISResult(status=self.status.copy(), ranks=self.ranks.copy(), stats=stats)

    def verify(self) -> None:
        """Re-check the greedy fixpoint on every vertex (guards hook).

        Raises :class:`~repro.errors.InvariantViolationError` if any
        vertex's status disagrees with the greedy rule — the full-guard
        invariant for sessions.
        """
        rank = self._rank
        for v in range(self.n):
            expected = IN_SET
            for w in self._adj[v]:
                if rank[w] < rank[v] and self.status[w] == IN_SET:
                    expected = KNOCKED_OUT
                    break
            if self.status[v] != expected:
                raise InvariantViolationError(
                    f"incremental MIS fixpoint violated at vertex {v}"
                )

    # -- state (snapshot / worker replay) --------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-safe state capturing graph, ranks, status, and counters."""
        edges = []
        for a in range(self.n):
            for b in self._adj[a]:
                if a < b:
                    edges.append([a, b])
        edges.sort()
        return {
            "problem": "mis",
            "n": self.n,
            "ranks": self.ranks.tolist(),
            "edges": edges,
            "status": self.status.tolist(),
            "counters": self.counters.aux(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "IncrementalMIS":
        """Rebuild a maintainer from :meth:`to_state` output.

        The stored status is trusted (it was a verified fixpoint when
        snapshotted) so restore is O(n + m) with no re-peel; call
        :meth:`verify` to re-check it.
        """
        if state.get("problem") != "mis":
            raise InvalidGraphError(
                f"expected a 'mis' session state, got {state.get('problem')!r}"
            )
        n = int(state["n"])
        obj = cls.__new__(cls)
        obj.n = n
        obj.ranks = check_ranks(np.asarray(state["ranks"], dtype=np.int64), n)
        obj._rank = obj.ranks.tolist()
        obj._adj = [set() for _ in range(n)]
        edges = [(int(a), int(b)) for a, b in state["edges"]]
        for a, b in edges:
            pair = _canon_pair(a, b, n, "state")
            obj._adj[pair[0]].add(pair[1])
            obj._adj[pair[1]].add(pair[0])
        obj.m = len(edges)
        status = np.asarray(state["status"], dtype=np.int8)
        if status.shape != (n,):
            raise InvalidGraphError("state status length does not match n")
        obj.status = status.copy()
        obj.counters = _DynamicCounters()
        obj.counters.load(dict(state.get("counters", {})))
        obj._graph_cache = None
        return obj


class IncrementalMatching:
    """Maintain the lexicographically-first maximal matching under mutations.

    Edge identity is the canonical pair ``(min(u,v), max(u,v))``; each
    edge owns a priority that never changes while it exists.  Initial
    edges take the caller's rank permutation when given (positions in
    ``graph.edge_list()`` order); edges inserted later draw a
    deterministic priority from :func:`edge_priority` under the session
    *seed*, so the whole evolution is replayable.  Ties are broken by the
    endpoint pair, making the edge order total.

    :meth:`current_ranks` exposes the live edge order as a dense
    permutation over the canonical edge list — what a from-scratch
    reference solve of the mutated graph must use for parity.
    """

    problem = "matching"

    def __init__(
        self,
        graph_or_edges: Union[CSRGraph, EdgeList],
        ranks: Optional[np.ndarray] = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        if isinstance(graph_or_edges, CSRGraph):
            el = graph_or_edges.edge_list()
        elif isinstance(graph_or_edges, EdgeList):
            el = graph_or_edges
        else:
            raise InvalidGraphError(
                f"expected CSRGraph or EdgeList, got {type(graph_or_edges).__name__}"
            )
        n = el.num_vertices
        m = el.num_edges
        self.n = n
        self.seed = int(seed) if seed is not None else 0
        if ranks is not None:
            ranks = check_ranks(ranks, m)
            prios = ranks.tolist()
        else:
            prios = [
                edge_priority(self.seed, int(a), int(b))
                for a, b in zip(el.u.tolist(), el.v.tolist())
            ]
        # key -> [priority, matched]
        self._edges: Dict[EdgePair, List] = {}
        self._incident: List[Set[EdgePair]] = [set() for _ in range(n)]
        for a, b, p in zip(el.u.tolist(), el.v.tolist(), prios):
            key = (a, b)
            if key in self._edges:
                raise InvalidGraphError(f"duplicate edge {key} in initial edge list")
            self._edges[key] = [int(p), False]
            self._incident[a].add(key)
            self._incident[b].add(key)
        self.counters = _DynamicCounters()
        self._peel(list(self._edges))

    # -- ordering --------------------------------------------------------

    def _order(self, key: EdgePair) -> Tuple[int, int, int]:
        return (self._edges[key][0], key[0], key[1])

    # -- mutation --------------------------------------------------------

    def apply_batch(
        self,
        insertions: Sequence[EdgePair] = (),
        deletions: Sequence[EdgePair] = (),
    ) -> Dict[str, object]:
        """Apply one mutation batch and re-peel the affected line-graph region.

        Same strictness contract as :meth:`IncrementalMIS.apply_batch`.
        """
        ins, dels = _check_batch(insertions, deletions, self.n)
        for key in ins:
            if key in self._edges:
                raise InvalidGraphError(f"insert: edge {key} already present")
        for key in dels:
            if key not in self._edges:
                raise InvalidGraphError(f"delete: edge {key} not present")
        dirty: Set[EdgePair] = set()
        for key in dels:
            prio, matched = self._edges[key]
            order = (prio, key[0], key[1])
            a, b = key
            self._incident[a].discard(key)
            self._incident[b].discard(key)
            del self._edges[key]
            if matched:
                # Only later-ordered adjacent edges can change: earlier
                # ones never depended on this edge.
                for nbr in self._incident[a] | self._incident[b]:
                    if self._order(nbr) > order:
                        dirty.add(nbr)
        # A later deletion in the same batch may remove an edge an earlier
        # deletion marked dirty; only surviving edges get re-peeled.
        dirty = {key for key in dirty if key in self._edges}
        for key in ins:
            a, b = key
            self._edges[key] = [edge_priority(self.seed, a, b), False]
            self._incident[a].add(key)
            self._incident[b].add(key)
            dirty.add(key)
        affected, flipped, scanned = self._peel(dirty)
        return self.counters.record(
            inserted=len(ins),
            deleted=len(dels),
            affected=affected,
            flipped=flipped,
            scanned_arcs=scanned,
            items=len(self._edges),
            arcs=len(self._edges),
        )

    def _peel(self, dirty: Iterable[EdgePair]) -> Tuple[int, int, int]:
        heap = [(self._order(key), key) for key in dirty]
        heapq.heapify(heap)
        queued = {key for (_, key) in heap}
        affected = flipped = scanned = 0
        edges = self._edges
        while heap:
            order, key = heapq.heappop(heap)
            queued.discard(key)
            if key not in edges:  # deleted while queued (defensive)
                continue
            affected += 1
            a, b = key
            new = True
            for nbr in self._incident[a] | self._incident[b]:
                if nbr == key:
                    continue
                scanned += 1
                rec = edges[nbr]
                if rec[1] and (rec[0], nbr[0], nbr[1]) < order:
                    new = False
                    break
            rec = edges[key]
            if rec[1] == new:
                continue
            rec[1] = new
            flipped += 1
            for nbr in self._incident[a] | self._incident[b]:
                if nbr == key:
                    continue
                scanned += 1
                if (edges[nbr][0], nbr[0], nbr[1]) > order and nbr not in queued:
                    queued.add(nbr)
                    heapq.heappush(heap, ((edges[nbr][0], nbr[0], nbr[1]), nbr))
        return affected, flipped, scanned

    # -- queries ---------------------------------------------------------

    @property
    def m(self) -> int:
        """Current edge count."""
        return len(self._edges)

    def matched_pairs(self) -> List[EdgePair]:
        """Currently matched edges (sorted canonical pairs)."""
        return sorted(key for key, rec in self._edges.items() if rec[1])

    def edge_list(self) -> EdgeList:
        """Current edges in canonical ``(u, v)``-sorted order."""
        keys = sorted(self._edges)
        u = np.asarray([k[0] for k in keys], dtype=np.int64)
        v = np.asarray([k[1] for k in keys], dtype=np.int64)
        return EdgeList(self.n, u, v)

    def graph(self) -> CSRGraph:
        """The current mutated graph as a CSR."""
        el = self.edge_list()
        return from_edges(self.n, el.u, el.v)

    def current_ranks(self) -> np.ndarray:
        """Dense edge-rank permutation over :meth:`edge_list` order.

        Rank of edge *i* = position of its ``(priority, u, v)`` key in the
        session's total edge order — feed this to a from-scratch engine to
        reproduce the maintained matching bit-for-bit.
        """
        keys = sorted(self._edges)
        orders = sorted(range(len(keys)), key=lambda i: self._order(keys[i]))
        ranks = np.empty(len(keys), dtype=np.int64)
        for pos, i in enumerate(orders):
            ranks[i] = pos
        return ranks

    def result(self) -> MatchingResult:
        """Current answer as a :class:`~repro.core.result.MatchingResult`."""
        keys = sorted(self._edges)
        status = np.fromiter(
            (EDGE_MATCHED if self._edges[k][1] else EDGE_DEAD for k in keys),
            dtype=np.int8,
            count=len(keys),
        )
        aux = {"dynamic": self.counters.aux()}
        stats = RunStats(
            algorithm="mm/incremental",
            n=self.n,
            m=len(keys),
            work=self.counters.total_work,
            depth=self.counters.total_work,
            steps=self.counters.batches,
            rounds=self.counters.batches,
            aux=aux,
        )
        return MatchingResult(
            status=status,
            edge_u=np.asarray([k[0] for k in keys], dtype=np.int64),
            edge_v=np.asarray([k[1] for k in keys], dtype=np.int64),
            ranks=self.current_ranks(),
            stats=stats,
        )

    def verify(self) -> None:
        """Re-check the greedy matching fixpoint on every edge."""
        for key, rec in self._edges.items():
            order = (rec[0], key[0], key[1])
            blocked = False
            for nbr in self._incident[key[0]] | self._incident[key[1]]:
                if nbr == key:
                    continue
                other = self._edges[nbr]
                if other[1] and (other[0], nbr[0], nbr[1]) < order:
                    blocked = True
                    break
            if rec[1] == blocked:
                raise InvariantViolationError(
                    f"incremental matching fixpoint violated at edge {key}"
                )

    # -- state -----------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-safe state: per-edge priorities and matched flags."""
        edges = [
            [k[0], k[1], rec[0], bool(rec[1])]
            for k, rec in sorted(self._edges.items())
        ]
        return {
            "problem": "matching",
            "n": self.n,
            "seed": self.seed,
            "edges": edges,
            "counters": self.counters.aux(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "IncrementalMatching":
        """Rebuild a maintainer from :meth:`to_state` output."""
        if state.get("problem") != "matching":
            raise InvalidGraphError(
                f"expected a 'matching' session state, got {state.get('problem')!r}"
            )
        n = int(state["n"])
        obj = cls.__new__(cls)
        obj.n = n
        obj.seed = int(state.get("seed", 0))
        obj._edges = {}
        obj._incident = [set() for _ in range(n)]
        for a, b, prio, matched in state["edges"]:
            key = _canon_pair(a, b, n, "state")
            if key in obj._edges:
                raise InvalidGraphError(f"duplicate edge {key} in session state")
            obj._edges[key] = [int(prio), bool(matched)]
            obj._incident[key[0]].add(key)
            obj._incident[key[1]].add(key)
        obj.counters = _DynamicCounters()
        obj.counters.load(dict(state.get("counters", {})))
        return obj
