"""Worker-side entry points for session jobs.

The service runs session work inside its crash-isolated worker pool via
the generic ``"call"`` job kind, pointing at the functions here.  The
contract that makes sessions survive worker kills is **replay from
committed state**: every function is a pure map from (state, batch) to
(state', stats) — the parent commits ``state'`` only after a successful
reply, so a worker killed mid-mutation is simply retried with the same
committed input and, by determinism of the maintainers, reproduces the
identical result.

Note the scope of that guarantee: it covers *service-side* retries of a
worker that died before replying.  A **client** retry after an
ambiguous outcome — the reply was lost after the parent committed — is
a different transaction and would re-apply the batch; deduplicating
those is the parent's job, via the ``mutation_id`` idempotency window
in :class:`~repro.service.sessions.SessionManager`.  Nothing here needs
to (or could) see the idempotency key: by the time a duplicate reaches
the dedup check it is answered from the recorded outcome and never
ships to a worker at all.

A small per-process cache keyed by ``(epoch, version)`` lets a worker
that already holds the maintainer for the committed version skip the
state rebuild; cache misses rebuild from the shipped state, so the
cache is a pure optimization with no correctness weight (chaos kills
wipe it with the process).  The *epoch* is an opaque token the
:class:`~repro.service.sessions.SessionManager` mints fresh on every
``create``/``restore`` — i.e. per state *timeline*, not per session id.
Keying on it (rather than the session id) means a maintainer cached on
an abandoned timeline — the session was closed and its id reused, or
restored from an older snapshot — can never be popped by a later
mutation whose version happens to line up: the new timeline carries a
new epoch, misses, and rebuilds from the shipped committed state.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dynamic.incremental import IncrementalMatching, IncrementalMIS
from repro.errors import InvalidGraphError
from repro.graphs.csr import CSRGraph, EdgeList

__all__ = ["create_session_state", "mutate_session_state", "restore_session_state"]

Maintainer = Union[IncrementalMIS, IncrementalMatching]

#: (epoch, version) → live maintainer for that committed version.
_CACHE: "OrderedDict[Tuple[str, int], Maintainer]" = OrderedDict()
_CACHE_MAX = 8


def _cache_put(key: Optional[Tuple[str, int]], maintainer: Maintainer) -> None:
    if key is None:
        return
    _CACHE[key] = maintainer
    _CACHE.move_to_end(key)
    while len(_CACHE) > _CACHE_MAX:
        _CACHE.popitem(last=False)


def _maintainer_from_state(state: Dict[str, Any]) -> Maintainer:
    problem = state.get("problem")
    if problem == "mis":
        return IncrementalMIS.from_state(state)
    if problem == "matching":
        return IncrementalMatching.from_state(state)
    raise InvalidGraphError(f"unknown session problem {problem!r}")


def _summary(maintainer: Maintainer, dynamic: Dict[str, Any]) -> Dict[str, Any]:
    if isinstance(maintainer, IncrementalMIS):
        size = len(maintainer.members())
    else:
        size = len(maintainer.matched_pairs())
    return {
        "state": maintainer.to_state(),
        "dynamic": dynamic,
        "n": maintainer.n,
        "m": maintainer.m,
        "size": size,
    }


def create_session_state(
    problem: str,
    payload: Union[CSRGraph, EdgeList],
    ranks: Optional[np.ndarray] = None,
    seed: Any = None,
    guards: Optional[str] = None,
) -> Dict[str, Any]:
    """Initial solve: build a maintainer and return its committed state."""
    if problem == "mis":
        if not isinstance(payload, CSRGraph):
            raise InvalidGraphError("mis sessions require a CSRGraph payload")
        maintainer: Maintainer = IncrementalMIS(payload, ranks, seed=seed)
    elif problem == "matching":
        maintainer = IncrementalMatching(payload, ranks, seed=seed)
    else:
        raise InvalidGraphError(f"unknown session problem {problem!r}")
    if guards == "full":
        maintainer.verify()
    return _summary(maintainer, maintainer.counters.aux())


def mutate_session_state(
    state: Dict[str, Any],
    insertions: Sequence[Tuple[int, int]] = (),
    deletions: Sequence[Tuple[int, int]] = (),
    epoch: Optional[str] = None,
    version: Optional[int] = None,
    guards: Optional[str] = None,
) -> Dict[str, Any]:
    """Apply one mutation batch to a committed state; return the new state.

    Pure in (state, batch) — shipping ``epoch``/``version`` only enables
    the warm-maintainer cache.  The epoch identifies the committed-state
    *timeline* (fresh per create/restore), so cached maintainers from a
    closed-and-recreated or snapshot-restored session never alias the
    current one.  Any failure evicts the cache entry so a poisoned
    half-applied maintainer can never serve a later version.
    """
    key = (epoch, version) if epoch is not None and version is not None else None
    # Popped (not peeked): if the batch fails mid-apply the maintainer is
    # simply dropped and the next attempt rebuilds from committed state.
    maintainer = _CACHE.pop(key, None) if key is not None else None
    if maintainer is None:
        maintainer = _maintainer_from_state(state)
    stats = maintainer.apply_batch(insertions=insertions, deletions=deletions)
    if guards == "full":
        maintainer.verify()
    out = _summary(maintainer, stats)
    if key is not None:
        _cache_put((key[0], key[1] + 1), maintainer)
    return out


def restore_session_state(
    state: Dict[str, Any],
    guards: Optional[str] = None,
) -> Dict[str, Any]:
    """Validate a snapshot by rebuilding (and optionally verifying) it."""
    maintainer = _maintainer_from_state(state)
    if guards == "full":
        maintainer.verify()
    return _summary(maintainer, maintainer.counters.aux())
