"""Durable session snapshots: atomic JSON files, one per session.

The service keeps the authoritative session state in memory and commits
a new state after every successful mutation; this store persists those
states so sessions survive full process restarts, not just worker
respawns.  Writes follow the same temp-file + ``os.replace`` discipline
as the bench checkpoint machinery: a crash mid-write leaves the previous
snapshot intact, never a torn file.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Union

from repro.errors import ReproError

__all__ = ["SnapshotStore"]

PathLike = Union[str, os.PathLike]


class SnapshotStore:
    """Directory of ``<session_id>.json`` snapshot files.

    Session ids are restricted to ``[A-Za-z0-9_.-]`` so an id can never
    escape the store directory.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, session_id: str) -> str:
        if not session_id or not all(
            c.isalnum() or c in "_.-" for c in session_id
        ):
            raise ReproError(f"invalid session id {session_id!r}")
        return os.path.join(self.root, f"{session_id}.json")

    def save(self, session_id: str, snapshot: Dict[str, object]) -> str:
        """Atomically persist *snapshot*; returns the file path."""
        path = self._path(session_id)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, separators=(",", ":"), sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load(self, session_id: str) -> Optional[Dict[str, object]]:
        """Read a snapshot back, or ``None`` if absent."""
        path = self._path(session_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"corrupt session snapshot {path!r}: {exc}") from exc

    def delete(self, session_id: str) -> bool:
        """Remove a snapshot; ``True`` if one existed."""
        try:
            os.unlink(self._path(session_id))
            return True
        except FileNotFoundError:
            return False

    def list_ids(self) -> List[str]:
        """Session ids with a persisted snapshot (sorted)."""
        out = []
        for name in os.listdir(self.root):
            if name.endswith(".json"):
                out.append(name[: -len(".json")])
        return sorted(out)
