"""Durable session snapshots: atomic, checksummed JSON files, one per session.

The service keeps the authoritative session state in memory and commits
a new state after every successful mutation; this store persists those
states so sessions survive full process restarts, not just worker
respawns.  Writes follow the same temp-file + ``os.replace`` discipline
as the bench checkpoint machinery: a crash mid-write leaves the previous
snapshot intact, never a torn file.

Two durability hazards remain even with atomic replacement, and both
are handled here rather than left to callers:

* **Stray temp files** — a process killed between ``mkstemp`` and
  ``os.replace`` leaks its temp file.  The store sweeps ``*.tmp``
  debris on construction (:attr:`SnapshotStore.tmp_swept`), and the
  resilience reaper reports the same sweep on its timer.
* **Corruption** — every snapshot is wrapped in an envelope carrying a
  SHA-256 of its canonical JSON encoding.  A load that fails to parse
  or fails the checksum renames the file to a ``.corrupt`` quarantine
  and raises the typed
  :class:`~repro.errors.SnapshotCorruptError` — never a raw
  ``json.JSONDecodeError`` — so the exit-code/status taxonomy holds,
  retries cannot re-read the poison, and ``repro recover`` can inspect
  what was quarantined.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Union

from repro.errors import ReproError, SnapshotCorruptError

__all__ = ["SnapshotStore", "snapshot_checksum"]

PathLike = Union[str, os.PathLike]


def snapshot_checksum(snapshot: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON encoding of *snapshot*.

    Canonical means sorted keys and compact separators — exactly the
    bytes :meth:`SnapshotStore.save` writes — so the digest is a pure
    function of content, not of dict ordering.
    """
    body = json.dumps(snapshot, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


class SnapshotStore:
    """Directory of ``<session_id>.json`` snapshot files.

    Session ids are restricted to ``[A-Za-z0-9_.-]`` so an id can never
    escape the store directory.  On disk each file is an envelope
    ``{"format": 1, "sha256": …, "snapshot": …}``; :meth:`load` verifies
    the digest before handing the payload back.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        #: ``*.tmp`` files left by writers killed mid-save, removed now.
        self.tmp_swept = self._sweep_tmp()
        #: Snapshots this instance quarantined (renamed ``.corrupt``).
        self.quarantined = 0

    def _sweep_tmp(self) -> int:
        swept = 0
        try:
            names = os.listdir(self.root)
        except OSError:  # pragma: no cover - root vanished
            return 0
        for name in names:
            if name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.root, name))
                    swept += 1
                except OSError:  # pragma: no cover - raced another sweep
                    pass
        return swept

    def _path(self, session_id: str) -> str:
        if not session_id or not all(
            c.isalnum() or c in "_.-" for c in session_id
        ):
            raise ReproError(f"invalid session id {session_id!r}")
        return os.path.join(self.root, f"{session_id}.json")

    def save(self, session_id: str, snapshot: Dict[str, object]) -> str:
        """Atomically persist *snapshot*; returns the file path."""
        path = self._path(session_id)
        envelope = {
            "format": 1,
            "sha256": snapshot_checksum(snapshot),
            "snapshot": snapshot,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(envelope, fh, separators=(",", ":"), sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def _quarantine(self, path: str, why: str) -> "SnapshotCorruptError":
        """Rename *path* out of the way and build the typed error."""
        target = f"{path}.corrupt"
        try:
            os.replace(path, target)
            self.quarantined += 1
            where = f"; quarantined as {os.path.basename(target)!r}"
        except OSError:  # pragma: no cover - raced / read-only dir
            where = "; quarantine rename failed"
        return SnapshotCorruptError(
            f"corrupt session snapshot {path!r}: {why}{where}"
        )

    def load(self, session_id: str) -> Optional[Dict[str, object]]:
        """Read a snapshot back, or ``None`` if absent.

        A file that fails to parse or fails its embedded checksum is
        renamed to ``<file>.corrupt`` and raises
        :class:`~repro.errors.SnapshotCorruptError`.
        """
        path = self._path(session_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        except OSError as exc:  # pragma: no cover - unreadable file
            raise SnapshotCorruptError(
                f"unreadable session snapshot {path!r}: {exc}"
            ) from exc
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise self._quarantine(path, f"not valid JSON ({exc})") from exc
        if (
            not isinstance(envelope, dict)
            or not isinstance(envelope.get("snapshot"), dict)
            or not isinstance(envelope.get("sha256"), str)
        ):
            raise self._quarantine(path, "missing checksum envelope")
        snapshot = envelope["snapshot"]
        digest = snapshot_checksum(snapshot)
        if digest != envelope["sha256"]:
            raise self._quarantine(
                path,
                f"checksum mismatch (recorded {envelope['sha256'][:12]}…, "
                f"recomputed {digest[:12]}…)",
            )
        return snapshot

    def delete(self, session_id: str) -> bool:
        """Remove a snapshot; ``True`` if one existed."""
        try:
            os.unlink(self._path(session_id))
            return True
        except FileNotFoundError:
            return False

    def list_ids(self) -> List[str]:
        """Session ids with a persisted snapshot (sorted)."""
        out = []
        for name in os.listdir(self.root):
            if name.endswith(".json"):
                out.append(name[: -len(".json")])
        return sorted(out)

    def corrupt_files(self) -> List[str]:
        """Quarantined snapshot filenames in the store (sorted)."""
        try:
            names = os.listdir(self.root)
        except OSError:  # pragma: no cover - root vanished
            return []
        return sorted(n for n in names if n.endswith(".corrupt"))

    def sweep_corrupt(self) -> List[str]:
        """Delete quarantined files; returns the names removed.

        Quarantine is held for inspection by default — the reaper only
        *reports* counts unless its sweep runs with purging enabled.
        ``repro recover`` lists the files and performs this sweep with
        ``--purge``.
        """
        removed = []
        for name in self.corrupt_files():
            try:
                os.unlink(os.path.join(self.root, name))
                removed.append(name)
            except OSError:  # pragma: no cover - raced another sweep
                pass
        return removed
