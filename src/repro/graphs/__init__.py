"""Graph substrate: CSR storage, builders, generators, and I/O.

Everything in :mod:`repro.core` operates on :class:`~repro.graphs.csr.CSRGraph`
(undirected, symmetric compressed-sparse-row adjacency over numpy ``int64``
arrays) or on its derived :class:`~repro.graphs.csr.EdgeList` (for maximal
matching, which orders *edges*).

The two evaluation inputs of the paper are provided by
:func:`~repro.graphs.generators.random_graphs.uniform_random_graph` and
:func:`~repro.graphs.generators.rmat.rmat_graph`.
"""

from repro.graphs.csr import CSRGraph, EdgeList
from repro.graphs.builders import (
    from_edges,
    from_adjacency_lists,
    from_networkx,
    to_networkx,
)
from repro.graphs.io import (
    read_adjacency_graph,
    write_adjacency_graph,
    read_edge_list,
    write_edge_list,
    read_snap_edge_list,
    check_edge_soup,
)
from repro.graphs.linegraph import line_graph
from repro.graphs import generators, properties

__all__ = [
    "CSRGraph",
    "EdgeList",
    "from_edges",
    "from_adjacency_lists",
    "from_networkx",
    "to_networkx",
    "read_adjacency_graph",
    "write_adjacency_graph",
    "read_edge_list",
    "write_edge_list",
    "read_snap_edge_list",
    "check_edge_soup",
    "line_graph",
    "generators",
    "properties",
]
