"""Structural graph predicates and statistics.

Validation-grade checks (symmetry, simplicity) live here rather than in the
``CSRGraph`` constructor so graph construction stays ``O(n + m)``; tests and
the I/O layer call these explicitly.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph, expand_offsets

__all__ = [
    "is_symmetric",
    "has_self_loops",
    "has_parallel_edges",
    "is_simple_undirected",
    "degree_histogram",
    "connected_components",
    "num_connected_components",
]


def is_symmetric(graph: CSRGraph) -> bool:
    """True iff every arc ``(u, v)`` has its reverse ``(v, u)`` present.

    Checked by sorting the encoded arc sets; ``O(m log m)``.
    """
    src, dst = graph.arcs()
    n = max(graph.num_vertices, 1)
    fwd = np.sort(src * np.int64(n) + dst)
    rev = np.sort(dst * np.int64(n) + src)
    return bool(np.array_equal(fwd, rev))


def has_self_loops(graph: CSRGraph) -> bool:
    """True iff some vertex lists itself as a neighbor."""
    src, dst = graph.arcs()
    return bool(np.any(src == dst))


def has_parallel_edges(graph: CSRGraph) -> bool:
    """True iff some neighbor appears twice in one vertex's list."""
    src, dst = graph.arcs()
    n = max(graph.num_vertices, 1)
    keys = src * np.int64(n) + dst
    return bool(np.unique(keys).size != keys.size)


def is_simple_undirected(graph: CSRGraph) -> bool:
    """Full invariant bundle: symmetric, loop-free, multi-edge-free."""
    return (
        is_symmetric(graph)
        and not has_self_loops(graph)
        and not has_parallel_edges(graph)
    )


def degree_histogram(graph: CSRGraph) -> Dict[int, int]:
    """``{degree: count}`` mapping, sparse (only degrees that occur)."""
    degs = graph.degrees()
    if degs.size == 0:
        return {}
    values, counts = np.unique(degs, return_counts=True)
    return {int(d): int(c) for d, c in zip(values, counts)}


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex via vectorized frontier BFS.

    Labels are the minimum vertex id of each component.  Runs one BFS per
    component but each BFS level is a single numpy gather, so total cost is
    ``O(n + m)`` array work.
    """
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if labels[start] != -1:
            continue
        labels[start] = start
        frontier = np.array([start], dtype=np.int64)
        while frontier.size:
            _, nbrs = graph.gather(frontier)
            nbrs = np.unique(nbrs)
            fresh = nbrs[labels[nbrs] == -1]
            labels[fresh] = start
            frontier = fresh
    return labels


def num_connected_components(graph: CSRGraph) -> int:
    """Number of connected components (isolated vertices count)."""
    if graph.num_vertices == 0:
        return 0
    return int(np.unique(connected_components(graph)).size)
