"""Compressed-sparse-row graph storage.

:class:`CSRGraph` stores a simple undirected graph as two ``int64`` arrays:

``offsets``
    Length ``n + 1``; the neighbors of vertex ``v`` occupy
    ``neighbors[offsets[v]:offsets[v+1]]``.
``neighbors``
    Length ``2m``; every undirected edge ``{u, v}`` appears twice, once in
    each endpoint's list.

This mirrors the PBBS representation the paper's code used and keeps every
hot kernel a pure numpy gather/scatter.  The class is immutable by
convention (algorithms never mutate graphs; they carry their own status
arrays), which makes sharing one graph across a parameter sweep safe.

:class:`EdgeList` is the edge-major view used by maximal matching: one row
per *undirected* edge with ``u < v``, plus a vertex→incident-edge CSR index
built lazily on first use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import InvalidGraphError
from repro.util.validation import require

__all__ = ["CSRGraph", "EdgeList", "gather_neighbors", "expand_offsets"]


def expand_offsets(offsets: np.ndarray) -> np.ndarray:
    """Expand a CSR boundary array into per-slot segment ids.

    ``expand_offsets([0, 2, 2, 5]) == [0, 0, 2, 2, 2]``: slot ``i`` of the
    data array belongs to segment ``expand_offsets(offsets)[i]``.  This is
    the standard vectorized replacement for "for v: for each neighbor of v"
    loops.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n = offsets.size - 1
    total = int(offsets[-1])
    degrees = np.diff(offsets)
    return np.repeat(np.arange(n, dtype=np.int64), degrees)


def gather_neighbors(
    offsets: np.ndarray, neighbors: np.ndarray, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized adjacency gather for a vertex subset.

    Returns ``(src, dst)`` arrays listing every directed edge leaving a
    vertex of *vertices*: ``src[i]`` is the source (repeated per neighbor)
    and ``dst[i]`` the neighbor.  No Python-level per-vertex loop: the
    flat neighbor indices are built with one ``repeat`` + ``arange``
    subtraction, as recommended by the HPC guides.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = offsets[vertices]
    degrees = offsets[vertices + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # Flat index of each output slot: output position plus the (constant
    # per segment) offset between a segment's CSR start and its start in
    # the output — one repeat instead of three.
    seg_starts = np.zeros(vertices.size, dtype=np.int64)
    np.cumsum(degrees[:-1], out=seg_starts[1:])
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - seg_starts, degrees)
    src = np.repeat(vertices, degrees)
    return src, neighbors[flat]


class CSRGraph:
    """Simple undirected graph in CSR form (see module docstring).

    Parameters
    ----------
    offsets, neighbors:
        The CSR arrays.  Converted to contiguous ``int64``; light
        structural validation (monotonicity, index ranges) always runs.
        Full symmetry validation is available via
        :func:`repro.graphs.properties.is_symmetric`.

    Notes
    -----
    Self-loops and parallel edges are rejected by the builders
    (:func:`repro.graphs.builders.from_edges`), not here: the constructor
    checks only what can be checked in ``O(n + m)`` without sorting.
    """

    __slots__ = ("offsets", "neighbors", "_edge_list", "__weakref__")

    def __init__(self, offsets: np.ndarray, neighbors: np.ndarray) -> None:
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        neighbors = np.ascontiguousarray(neighbors, dtype=np.int64)
        require(offsets.ndim == 1 and offsets.size >= 1,
                "offsets must be a 1-D array of length n+1", InvalidGraphError)
        require(neighbors.ndim == 1,
                "neighbors must be a 1-D array", InvalidGraphError)
        require(int(offsets[0]) == 0,
                f"offsets[0] must be 0, got {offsets[0]}", InvalidGraphError)
        require(int(offsets[-1]) == neighbors.size,
                f"offsets[-1] ({offsets[-1]}) must equal len(neighbors) ({neighbors.size})",
                InvalidGraphError)
        if offsets.size > 1:
            require(bool(np.all(np.diff(offsets) >= 0)),
                    "offsets must be non-decreasing", InvalidGraphError)
        n = offsets.size - 1
        if neighbors.size:
            lo, hi = int(neighbors.min()), int(neighbors.max())
            require(0 <= lo and hi < n,
                    f"neighbor ids must lie in [0, {n}), found [{lo}, {hi}]",
                    InvalidGraphError)
        require(neighbors.size % 2 == 0,
                "undirected CSR must hold an even number of directed arcs",
                InvalidGraphError)
        self.offsets = offsets
        self.neighbors = neighbors
        self._edge_list: Optional["EdgeList"] = None

    # -- basic measures ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self.neighbors.size // 2

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs stored (``2m``)."""
        return self.neighbors.size

    def degrees(self) -> np.ndarray:
        """Array of vertex degrees (length ``n``)."""
        return np.diff(self.offsets)

    def degree(self, v: int) -> int:
        """Degree of vertex *v*."""
        return int(self.offsets[v + 1] - self.offsets[v])

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max(initial=0))

    # -- adjacency access ----------------------------------------------------

    def neighbors_of(self, v: int) -> np.ndarray:
        """Read-only view of ``v``'s neighbor list."""
        return self.neighbors[self.offsets[v]:self.offsets[v + 1]]

    def arcs(self) -> Tuple[np.ndarray, np.ndarray]:
        """All directed arcs as ``(src, dst)`` arrays of length ``2m``."""
        return expand_offsets(self.offsets), self.neighbors

    def gather(self, vertices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Arcs leaving the given vertex subset; see :func:`gather_neighbors`."""
        return gather_neighbors(self.offsets, self.neighbors, vertices)

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test by scanning the smaller endpoint list."""
        if self.degree(u) > self.degree(v):
            u, v = v, u
        return bool(np.any(self.neighbors_of(u) == v))

    # -- derived structures --------------------------------------------------

    def edge_list(self) -> "EdgeList":
        """The canonical :class:`EdgeList` view (``u < v``, cached).

        Edge ``i`` of the list is the ``i``-th arc with ``src < dst`` in
        CSR order, which gives a stable, representation-defined edge
        numbering used by the matching algorithms and the line graph.
        """
        if self._edge_list is None:
            src, dst = self.arcs()
            keep = src < dst
            self._edge_list = EdgeList(self.num_vertices, src[keep], dst[keep])
        return self._edge_list

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return bool(
            np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.neighbors, other.neighbors)
        )

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_edges))


class EdgeList:
    """Edge-major view of an undirected graph.

    Attributes
    ----------
    num_vertices:
        Vertex-count of the underlying graph.
    u, v:
        ``int64`` arrays of endpoints with ``u[i] < v[i]``; edge ids are
        array positions.

    The vertex→incident-edges CSR index (:meth:`incidence`) is built lazily
    because only the matching engines need it.
    """

    __slots__ = ("num_vertices", "u", "v", "_inc_offsets", "_inc_edges", "__weakref__")

    def __init__(self, num_vertices: int, u: np.ndarray, v: np.ndarray) -> None:
        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        require(u.shape == v.shape and u.ndim == 1,
                "endpoint arrays must be 1-D and equal length", InvalidGraphError)
        require(num_vertices >= 0, "num_vertices must be non-negative", InvalidGraphError)
        if u.size:
            require(bool(np.all(u < v)),
                    "edge list must be canonical: u[i] < v[i] for all edges",
                    InvalidGraphError)
            lo = int(min(u.min(), v.min()))
            hi = int(max(u.max(), v.max()))
            require(0 <= lo and hi < num_vertices,
                    f"edge endpoints must lie in [0, {num_vertices})",
                    InvalidGraphError)
        self.num_vertices = int(num_vertices)
        self.u = u
        self.v = v
        self._inc_offsets: Optional[np.ndarray] = None
        self._inc_edges: Optional[np.ndarray] = None

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self.u.size

    def incidence(self) -> Tuple[np.ndarray, np.ndarray]:
        """Vertex→incident-edge CSR index ``(offsets, edge_ids)``.

        ``edge_ids[offsets[w]:offsets[w+1]]`` lists the ids of edges
        incident on vertex ``w``.  Built once with a counting sort (linear
        work) and cached.
        """
        if self._inc_offsets is None:
            n, m = self.num_vertices, self.num_edges
            endpoints = np.concatenate([self.u, self.v])
            edge_ids = np.concatenate(
                [np.arange(m, dtype=np.int64), np.arange(m, dtype=np.int64)]
            )
            order = np.argsort(endpoints, kind="stable")
            counts = np.bincount(endpoints, minlength=n).astype(np.int64, copy=False)
            offsets = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            self._inc_offsets = offsets
            self._inc_edges = edge_ids[order]
        return self._inc_offsets, self._inc_edges

    def endpoints(self, e: int) -> Tuple[int, int]:
        """Endpoints ``(u, v)`` of edge *e* with ``u < v``."""
        return int(self.u[e]), int(self.v[e])

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for a, b in zip(self.u.tolist(), self.v.tolist()):
            yield a, b

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EdgeList(n={self.num_vertices}, m={self.num_edges})"
