"""Graph file I/O in the two PBBS text formats.

The paper's experimental inputs come from the Problem Based Benchmark Suite
tooling; this module implements its two interchange formats so generated
workloads can be persisted and re-read byte-for-byte.

Adjacency-graph format (header ``AdjacencyGraph``)::

    AdjacencyGraph
    <n>
    <num arcs>
    <n offsets, one per line>
    <num-arcs neighbor ids, one per line>

Edge-array format (header ``EdgeArray``)::

    EdgeArray
    <u> <v>
    ...

Both readers validate counts and raise :class:`~repro.errors.GraphFormatError`
with line-level context on malformed input.

A third, headerless format covers real-world inputs: SNAP edge lists
(``#``-prefixed comment lines, one ``u v`` pair per line, arbitrary
non-contiguous node ids) via :func:`read_snap_edge_list`, which relabels
ids to a contiguous ``0..n-1`` range.

Edge-soup readers are **strict** by default: self-loops and duplicate
undirected edges raise :class:`~repro.errors.InvalidGraphError` naming the
first offender, instead of being silently canonicalized away (the old
behaviour let corrupt inputs surface later as CSR-invariant failures deep
in the kernels).  Pass ``strict=False`` to restore dedup/loop-dropping for
deliberately soupy inputs.
"""

from __future__ import annotations

import io
import os
from typing import Tuple, Union

import numpy as np

from repro.errors import GraphFormatError, InvalidGraphError
from repro.graphs.builders import from_edges
from repro.graphs.csr import CSRGraph

__all__ = [
    "ADJACENCY_HEADER",
    "EDGE_ARRAY_HEADER",
    "read_adjacency_graph",
    "write_adjacency_graph",
    "read_edge_list",
    "write_edge_list",
    "read_snap_edge_list",
    "check_edge_soup",
]

ADJACENCY_HEADER = "AdjacencyGraph"
EDGE_ARRAY_HEADER = "EdgeArray"

PathLike = Union[str, os.PathLike]


def _is_gzip(path: PathLike) -> bool:
    return str(path).endswith(".gz")


def _read_tokens(path: PathLike) -> list:
    """Read a whitespace-token stream; ``.gz`` paths are transparently
    decompressed (large PBBS inputs are usually shipped gzipped)."""
    try:
        if _is_gzip(path):
            import gzip

            with gzip.open(path, "rt", encoding="ascii") as fh:
                text = fh.read()
        else:
            with open(path, "r", encoding="ascii") as fh:
                text = fh.read()
    except OSError as exc:
        raise GraphFormatError(f"cannot read graph file {path!r}: {exc}") from exc
    return text.split()


def _open_for_write(path: PathLike):
    if _is_gzip(path):
        import gzip

        return gzip.open(path, "wt", encoding="ascii")
    return open(path, "w", encoding="ascii")


def read_adjacency_graph(path: PathLike) -> CSRGraph:
    """Read a graph in PBBS adjacency format.

    The stored graph is taken at face value as a directed CSR; the PBBS
    convention for undirected graphs is to store both arc directions, and
    :class:`CSRGraph` construction enforces the resulting arc-count parity.
    """
    tokens = _read_tokens(path)
    if not tokens or tokens[0] != ADJACENCY_HEADER:
        found = tokens[0] if tokens else "<empty file>"
        raise GraphFormatError(
            f"{path}: expected header {ADJACENCY_HEADER!r}, found {found!r}"
        )
    if len(tokens) < 3:
        raise GraphFormatError(f"{path}: missing vertex/arc counts")
    try:
        n = int(tokens[1])
        arcs = int(tokens[2])
    except ValueError as exc:
        raise GraphFormatError(f"{path}: non-integer counts in header") from exc
    expected = 3 + n + arcs
    if len(tokens) != expected:
        raise GraphFormatError(
            f"{path}: expected {expected} tokens for n={n}, arcs={arcs}; "
            f"found {len(tokens)}"
        )
    try:
        body = np.array(tokens[3:], dtype=np.int64)
    except ValueError as exc:
        raise GraphFormatError(f"{path}: non-integer payload") from exc
    starts = body[:n]
    neighbors = body[n:]
    offsets = np.empty(n + 1, dtype=np.int64)
    offsets[:n] = starts
    offsets[n] = arcs
    try:
        return CSRGraph(offsets, neighbors)
    except Exception as exc:
        raise GraphFormatError(f"{path}: invalid CSR payload: {exc}") from exc


def write_adjacency_graph(graph: CSRGraph, path: PathLike) -> None:
    """Write *graph* in PBBS adjacency format (see module docstring)."""
    buf = io.StringIO()
    buf.write(ADJACENCY_HEADER + "\n")
    buf.write(f"{graph.num_vertices}\n")
    buf.write(f"{graph.num_arcs}\n")
    np.savetxt(buf, graph.offsets[:-1], fmt="%d")
    np.savetxt(buf, graph.neighbors, fmt="%d")
    with _open_for_write(path) as fh:
        fh.write(buf.getvalue())


def check_edge_soup(u: np.ndarray, v: np.ndarray, context: str = "edge list") -> None:
    """Reject self-loops and duplicate undirected edges.

    Raises :class:`~repro.errors.InvalidGraphError` naming the first
    offending pair.  A duplicate is any repeated unordered pair — ``1 0``
    after ``0 1`` counts.  Shared by the PBBS and SNAP edge readers (and
    usable by any caller assembling an edge soup by hand).
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    loops = np.nonzero(u == v)[0]
    if loops.size:
        i = int(loops[0])
        raise InvalidGraphError(
            f"{context}: {loops.size} self-loop(s); first is edge "
            f"#{i} ({int(u[i])}, {int(u[i])})"
        )
    if u.size == 0:
        return
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    n = int(hi.max()) + 1
    keys = lo * np.int64(n) + hi
    uniq, first, counts = np.unique(keys, return_index=True, return_counts=True)
    dup = np.nonzero(counts > 1)[0]
    if dup.size:
        i = int(first[dup[0]])
        extra = int(counts[dup].sum() - dup.size)
        raise InvalidGraphError(
            f"{context}: {extra} duplicate undirected edge(s); first "
            f"duplicated pair is ({int(lo[i])}, {int(hi[i])})"
        )


def read_edge_list(path: PathLike, *, strict: bool = True) -> CSRGraph:
    """Read a graph in PBBS edge-array format.

    Vertex count is inferred as ``max endpoint + 1``.  With the default
    ``strict=True``, self-loops and duplicate undirected edges raise
    :class:`~repro.errors.InvalidGraphError` (see :func:`check_edge_soup`);
    with ``strict=False`` the soup is canonicalized through
    :func:`repro.graphs.builders.from_edges` (dedup, loop removal) as the
    reader historically did.
    """
    tokens = _read_tokens(path)
    if not tokens or tokens[0] != EDGE_ARRAY_HEADER:
        found = tokens[0] if tokens else "<empty file>"
        raise GraphFormatError(
            f"{path}: expected header {EDGE_ARRAY_HEADER!r}, found {found!r}"
        )
    body = tokens[1:]
    if len(body) % 2 != 0:
        raise GraphFormatError(
            f"{path}: edge payload has odd token count {len(body)}"
        )
    try:
        flat = np.array(body, dtype=np.int64)
    except ValueError as exc:
        raise GraphFormatError(f"{path}: non-integer endpoints") from exc
    if flat.size == 0:
        return from_edges(0, flat, flat)
    if flat.min() < 0:
        raise GraphFormatError(f"{path}: negative vertex id")
    u = flat[0::2]
    v = flat[1::2]
    n = int(flat.max()) + 1
    if strict:
        check_edge_soup(u, v, context=str(path))
    return from_edges(n, u, v)


def read_snap_edge_list(path: PathLike, *, strict: bool = True) -> CSRGraph:
    """Read a SNAP-style edge list (comments, arbitrary node ids).

    The format used by the SNAP network repository: ``#``-prefixed comment
    lines anywhere, then one ``u v`` pair per line (tabs or spaces).  Node
    ids may be arbitrary non-negative integers with gaps; they are
    relabeled to ``0..n-1`` in ascending numeric order, so the result is
    deterministic for a given file.  ``.gz`` paths decompress
    transparently.

    Inherits the strict edge-soup check from :func:`check_edge_soup`:
    self-loops or duplicate undirected edges (including a pair listed in
    both directions, as directed SNAP exports do) raise
    :class:`~repro.errors.InvalidGraphError` unless ``strict=False``,
    which canonicalizes instead.
    """
    try:
        if _is_gzip(path):
            import gzip

            with gzip.open(path, "rt", encoding="ascii") as fh:
                lines = fh.readlines()
        else:
            with open(path, "r", encoding="ascii") as fh:
                lines = fh.readlines()
    except OSError as exc:
        raise GraphFormatError(f"cannot read graph file {path!r}: {exc}") from exc
    us = []
    vs = []
    for lineno, line in enumerate(lines, start=1):
        body = line.strip()
        if not body or body.startswith("#"):
            continue
        parts = body.split()
        if len(parts) != 2:
            raise GraphFormatError(
                f"{path}:{lineno}: expected 'u v', found {body!r}"
            )
        try:
            us.append(int(parts[0]))
            vs.append(int(parts[1]))
        except ValueError as exc:
            raise GraphFormatError(
                f"{path}:{lineno}: non-integer endpoint in {body!r}"
            ) from exc
    u = np.asarray(us, dtype=np.int64)
    v = np.asarray(vs, dtype=np.int64)
    if u.size == 0:
        return from_edges(0, u, v)
    if min(int(u.min()), int(v.min())) < 0:
        raise GraphFormatError(f"{path}: negative vertex id")
    labels = np.unique(np.concatenate([u, v]))
    u = np.searchsorted(labels, u)
    v = np.searchsorted(labels, v)
    n = int(labels.size)
    if strict:
        check_edge_soup(u, v, context=str(path))
    return from_edges(n, u, v)


def write_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write *graph* as a PBBS edge array (one ``u v`` line per edge)."""
    el = graph.edge_list()
    pairs = np.stack([el.u, el.v], axis=1)
    buf = io.StringIO()
    buf.write(EDGE_ARRAY_HEADER + "\n")
    np.savetxt(buf, pairs, fmt="%d")
    with _open_for_write(path) as fh:
        fh.write(buf.getvalue())
