"""Graph file I/O in the two PBBS text formats.

The paper's experimental inputs come from the Problem Based Benchmark Suite
tooling; this module implements its two interchange formats so generated
workloads can be persisted and re-read byte-for-byte.

Adjacency-graph format (header ``AdjacencyGraph``)::

    AdjacencyGraph
    <n>
    <num arcs>
    <n offsets, one per line>
    <num-arcs neighbor ids, one per line>

Edge-array format (header ``EdgeArray``)::

    EdgeArray
    <u> <v>
    ...

Both readers validate counts and raise :class:`~repro.errors.GraphFormatError`
with line-level context on malformed input.
"""

from __future__ import annotations

import io
import os
from typing import Tuple, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.builders import from_edges
from repro.graphs.csr import CSRGraph

__all__ = [
    "ADJACENCY_HEADER",
    "EDGE_ARRAY_HEADER",
    "read_adjacency_graph",
    "write_adjacency_graph",
    "read_edge_list",
    "write_edge_list",
]

ADJACENCY_HEADER = "AdjacencyGraph"
EDGE_ARRAY_HEADER = "EdgeArray"

PathLike = Union[str, os.PathLike]


def _is_gzip(path: PathLike) -> bool:
    return str(path).endswith(".gz")


def _read_tokens(path: PathLike) -> list:
    """Read a whitespace-token stream; ``.gz`` paths are transparently
    decompressed (large PBBS inputs are usually shipped gzipped)."""
    try:
        if _is_gzip(path):
            import gzip

            with gzip.open(path, "rt", encoding="ascii") as fh:
                text = fh.read()
        else:
            with open(path, "r", encoding="ascii") as fh:
                text = fh.read()
    except OSError as exc:
        raise GraphFormatError(f"cannot read graph file {path!r}: {exc}") from exc
    return text.split()


def _open_for_write(path: PathLike):
    if _is_gzip(path):
        import gzip

        return gzip.open(path, "wt", encoding="ascii")
    return open(path, "w", encoding="ascii")


def read_adjacency_graph(path: PathLike) -> CSRGraph:
    """Read a graph in PBBS adjacency format.

    The stored graph is taken at face value as a directed CSR; the PBBS
    convention for undirected graphs is to store both arc directions, and
    :class:`CSRGraph` construction enforces the resulting arc-count parity.
    """
    tokens = _read_tokens(path)
    if not tokens or tokens[0] != ADJACENCY_HEADER:
        found = tokens[0] if tokens else "<empty file>"
        raise GraphFormatError(
            f"{path}: expected header {ADJACENCY_HEADER!r}, found {found!r}"
        )
    if len(tokens) < 3:
        raise GraphFormatError(f"{path}: missing vertex/arc counts")
    try:
        n = int(tokens[1])
        arcs = int(tokens[2])
    except ValueError as exc:
        raise GraphFormatError(f"{path}: non-integer counts in header") from exc
    expected = 3 + n + arcs
    if len(tokens) != expected:
        raise GraphFormatError(
            f"{path}: expected {expected} tokens for n={n}, arcs={arcs}; "
            f"found {len(tokens)}"
        )
    try:
        body = np.array(tokens[3:], dtype=np.int64)
    except ValueError as exc:
        raise GraphFormatError(f"{path}: non-integer payload") from exc
    starts = body[:n]
    neighbors = body[n:]
    offsets = np.empty(n + 1, dtype=np.int64)
    offsets[:n] = starts
    offsets[n] = arcs
    try:
        return CSRGraph(offsets, neighbors)
    except Exception as exc:
        raise GraphFormatError(f"{path}: invalid CSR payload: {exc}") from exc


def write_adjacency_graph(graph: CSRGraph, path: PathLike) -> None:
    """Write *graph* in PBBS adjacency format (see module docstring)."""
    buf = io.StringIO()
    buf.write(ADJACENCY_HEADER + "\n")
    buf.write(f"{graph.num_vertices}\n")
    buf.write(f"{graph.num_arcs}\n")
    np.savetxt(buf, graph.offsets[:-1], fmt="%d")
    np.savetxt(buf, graph.neighbors, fmt="%d")
    with _open_for_write(path) as fh:
        fh.write(buf.getvalue())


def read_edge_list(path: PathLike) -> CSRGraph:
    """Read a graph in PBBS edge-array format and canonicalize it.

    Vertex count is inferred as ``max endpoint + 1``; the edge soup passes
    through :func:`repro.graphs.builders.from_edges` (dedup, loop removal).
    """
    tokens = _read_tokens(path)
    if not tokens or tokens[0] != EDGE_ARRAY_HEADER:
        found = tokens[0] if tokens else "<empty file>"
        raise GraphFormatError(
            f"{path}: expected header {EDGE_ARRAY_HEADER!r}, found {found!r}"
        )
    body = tokens[1:]
    if len(body) % 2 != 0:
        raise GraphFormatError(
            f"{path}: edge payload has odd token count {len(body)}"
        )
    try:
        flat = np.array(body, dtype=np.int64)
    except ValueError as exc:
        raise GraphFormatError(f"{path}: non-integer endpoints") from exc
    if flat.size == 0:
        return from_edges(0, flat, flat)
    if flat.min() < 0:
        raise GraphFormatError(f"{path}: negative vertex id")
    u = flat[0::2]
    v = flat[1::2]
    n = int(flat.max()) + 1
    return from_edges(n, u, v)


def write_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write *graph* as a PBBS edge array (one ``u v`` line per edge)."""
    el = graph.edge_list()
    pairs = np.stack([el.u, el.v], axis=1)
    buf = io.StringIO()
    buf.write(EDGE_ARRAY_HEADER + "\n")
    np.savetxt(buf, pairs, fmt="%d")
    with _open_for_write(path) as fh:
        fh.write(buf.getvalue())
