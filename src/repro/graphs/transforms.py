"""Graph transforms: induction, relabeling, unions, degree capping.

Utilities the applications and test suites lean on.  All transforms
return fresh :class:`~repro.graphs.csr.CSRGraph` objects (graphs are
immutable by convention) and are vectorized end to end.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.orderings import validate_priorities
from repro.graphs.builders import from_edges
from repro.graphs.csr import CSRGraph
from repro.util.validation import check_index_array, require

__all__ = [
    "induced_subgraph",
    "remove_vertices",
    "relabel",
    "disjoint_union",
    "cap_degrees",
]


def induced_subgraph(graph: CSRGraph, vertices) -> Tuple[CSRGraph, np.ndarray]:
    """The subgraph induced by *vertices* (ids or boolean mask).

    Returns ``(subgraph, kept)`` where ``kept`` is the sorted array of
    original vertex ids; new vertex ``i`` corresponds to ``kept[i]``.
    """
    n = graph.num_vertices
    mask = np.asarray(vertices)
    if mask.dtype == bool:
        require(mask.shape == (n,), f"mask must have shape ({n},)", ValueError)
        keep = mask
    else:
        ids = check_index_array(mask, n, "vertices")
        keep = np.zeros(n, dtype=bool)
        keep[ids] = True
    kept = np.nonzero(keep)[0].astype(np.int64)
    new_id = np.cumsum(keep, dtype=np.int64) - 1
    src, dst = graph.arcs()
    alive = keep[src] & keep[dst]
    sub = from_edges(int(kept.size), new_id[src[alive]], new_id[dst[alive]])
    return sub, kept


def remove_vertices(graph: CSRGraph, vertices) -> Tuple[CSRGraph, np.ndarray]:
    """Complement of :func:`induced_subgraph`: drop the given vertices."""
    n = graph.num_vertices
    mask = np.asarray(vertices)
    if mask.dtype == bool:
        require(mask.shape == (n,), f"mask must have shape ({n},)", ValueError)
        drop = mask
    else:
        ids = check_index_array(mask, n, "vertices")
        drop = np.zeros(n, dtype=bool)
        drop[ids] = True
    return induced_subgraph(graph, ~drop)


def relabel(graph: CSRGraph, permutation: np.ndarray) -> CSRGraph:
    """Rename vertex ``v`` to ``permutation[v]`` (a bijection on ids).

    Relabeling then running greedy with identity priorities is the same as
    running greedy with ``ranks = permutation`` on the original graph — a
    cross-check the tests use.
    """
    n = graph.num_vertices
    perm = validate_priorities(np.asarray(permutation), n)
    src, dst = graph.arcs()
    return from_edges(n, perm[src], perm[dst])


def disjoint_union(a: CSRGraph, b: CSRGraph) -> CSRGraph:
    """Place *a* and *b* side by side; *b*'s ids are shifted by ``a.n``."""
    na = a.num_vertices
    asrc, adst = a.arcs()
    bsrc, bdst = b.arcs()
    src = np.concatenate([asrc, bsrc + na])
    dst = np.concatenate([adst, bdst + na])
    return from_edges(na + b.num_vertices, src, dst)


def cap_degrees(graph: CSRGraph, max_degree: int, seed=None) -> CSRGraph:
    """Drop edges until every vertex has degree <= *max_degree*.

    Edges are dropped in a deterministic order (highest canonical edge id
    first when *seed* is None, random otherwise) by repeatedly filtering
    edges whose endpoints still exceed the cap.  Useful for constructing
    the bounded-degree inputs of the lemma suites.
    """
    require(max_degree >= 0, f"max_degree must be >= 0, got {max_degree}", ValueError)
    el = graph.edge_list()
    m = el.num_edges
    if m == 0:
        return graph
    if seed is None:
        order = np.arange(m, dtype=np.int64)
    else:
        from repro.util.rng import as_generator

        order = as_generator(seed).permutation(m).astype(np.int64)
    degree = np.zeros(graph.num_vertices, dtype=np.int64)
    keep = np.zeros(m, dtype=bool)
    # Greedy in order: keep an edge iff both endpoints are under the cap.
    for e in order.tolist():
        a, b = int(el.u[e]), int(el.v[e])
        if degree[a] < max_degree and degree[b] < max_degree:
            keep[e] = True
            degree[a] += 1
            degree[b] += 1
    ids = np.nonzero(keep)[0]
    return from_edges(graph.num_vertices, el.u[ids], el.v[ids])
