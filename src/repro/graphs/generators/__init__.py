"""Workload generators.

The two evaluation inputs of the paper:

* :func:`~repro.graphs.generators.random_graphs.uniform_random_graph` —
  the "sparse random graph" (uniform G(n, m)); the paper used n = 10^7,
  m = 5 x 10^7.
* :func:`~repro.graphs.generators.rmat.rmat_graph` — the R-MAT power-law
  graph of Chakrabarti, Zhan & Faloutsos; the paper used n = 2^24,
  m = 5 x 10^7.

Plus structured families (grid/torus/cycle/star/complete/tree) and
power-law models (Chung-Lu, Barabasi-Albert) used by the test and theory
suites to exercise adversarial degree distributions.
"""

from repro.graphs.generators.random_graphs import uniform_random_graph, gnp_random_graph
from repro.graphs.generators.rmat import rmat_graph
from repro.graphs.generators.structured import (
    empty_graph,
    path_graph,
    cycle_graph,
    complete_graph,
    star_graph,
    grid_graph,
    triangular_grid_graph,
    torus_graph,
    balanced_tree,
    hypercube_graph,
    complete_bipartite_graph,
)
from repro.graphs.generators.powerlaw import (
    chung_lu_graph,
    barabasi_albert_graph,
    powerlaw_cluster_graph,
)

__all__ = [
    "uniform_random_graph",
    "gnp_random_graph",
    "rmat_graph",
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "triangular_grid_graph",
    "torus_graph",
    "balanced_tree",
    "hypercube_graph",
    "complete_bipartite_graph",
    "chung_lu_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
]
