"""R-MAT recursive-matrix graphs (Chakrabarti, Zhan & Faloutsos, SDM 2004).

The paper's second input is "an rMat graph with 2^24 vertices and 5x10^7
edges ... [with] a power-law distribution of degrees" [5].  R-MAT places
each edge by recursively descending a 2x2 partition of the adjacency
matrix, choosing quadrant (a, b, c, d) at each of ``scale`` levels.  We use
the PBBS parameterization (a=0.5, b=c=0.1, d=0.3) with per-level
probability noise, vectorized across all edges: the level loop runs
``scale`` times regardless of ``m``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.builders import from_edges
from repro.graphs.csr import CSRGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive_int, require

__all__ = ["rmat_graph"]


def rmat_graph(
    scale: int,
    m: int,
    seed: SeedLike = None,
    *,
    a: float = 0.5,
    b: float = 0.1,
    c: float = 0.1,
    noise: float = 0.1,
) -> CSRGraph:
    """Sample an R-MAT graph with ``n = 2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count (the paper used 24; the scaled default
        workload uses 17).
    m:
        Number of edge *samples*.  Because R-MAT heavily revisits hot
        cells, the simple graph that results after dedup/loop removal has
        somewhat fewer edges — the same behaviour as the PBBS generator.
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c`` must be positive.
    noise:
        Multiplicative jitter applied to ``a`` per level per edge (PBBS
        applies similar smoothing to avoid exact-degree artifacts).

    Returns
    -------
    CSRGraph
        Simple undirected graph with power-law-ish degree distribution.
    """
    scale = check_positive_int(scale, "scale")
    require(scale <= 30, f"scale={scale} would allocate >2^30 vertices", ValueError)
    m = int(m)
    require(m >= 0, f"edge sample count must be non-negative, got {m}", ValueError)
    d = 1.0 - a - b - c
    require(
        min(a, b, c, d) >= 0.0,
        f"quadrant probabilities must be non-negative (a={a}, b={b}, c={c}, d={d})",
        ValueError,
    )
    require(0.0 <= noise < 1.0, f"noise must lie in [0, 1), got {noise}", ValueError)
    rng = as_generator(seed)
    n = 1 << scale
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    for _level in range(scale):
        # Per-edge jittered quadrant probabilities (keeps ratios of b, c, d).
        if noise > 0.0:
            jitter = 1.0 + noise * (rng.random(m) * 2.0 - 1.0)
            aa = np.clip(a * jitter, 0.0, 1.0)
        else:
            aa = np.full(m, a)
        rest = 1.0 - aa
        denom = b + c + d
        bb = rest * (b / denom)
        cc = rest * (c / denom)
        r = rng.random(m)
        # Quadrants: A = top-left (0,0), B = top-right (0,1),
        #            C = bottom-left (1,0), D = bottom-right (1,1).
        in_b = (r >= aa) & (r < aa + bb)
        in_c = (r >= aa + bb) & (r < aa + bb + cc)
        in_d = r >= aa + bb + cc
        u = (u << 1) | in_c | in_d
        v = (v << 1) | in_b | in_d
    return from_edges(n, u, v)
