"""Uniform random graphs: G(n, m) and G(n, p).

``uniform_random_graph`` reproduces the paper's "sparse random graph"
input: ``m`` edges sampled uniformly among all vertex pairs, loops and
duplicates removed.  Sampling is rejection-free in expectation: we
oversample, canonicalize, and top up in the rare case of a shortfall.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.builders import canonical_edges, from_edges
from repro.graphs.csr import CSRGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive_int, require

__all__ = ["uniform_random_graph", "gnp_random_graph"]


def uniform_random_graph(
    n: int,
    m: int,
    seed: SeedLike = None,
    *,
    exact: bool = True,
    max_attempts: int = 64,
) -> CSRGraph:
    """Sample a simple graph with *m* distinct uniform edges on *n* vertices.

    Parameters
    ----------
    n, m:
        Vertex and edge counts.  ``m`` must not exceed ``n*(n-1)/2``.
    seed:
        Seed material (see :data:`repro.util.rng.SeedLike`).
    exact:
        When true (default), keep sampling until exactly *m* distinct
        edges are collected; when false, a single oversampled round is
        taken and the result may have slightly fewer edges (faster for
        throwaway workloads).
    max_attempts:
        Safety bound on top-up rounds (only reachable for near-complete
        graphs).

    Notes
    -----
    The sampled distribution is uniform over simple graphs with exactly
    *m* edges, matching the G(n, m) model the paper's analysis permits
    (the analysis holds for *any* graph; the experiments use this input).
    """
    n = check_positive_int(n, "n")
    m = int(m)
    require(m >= 0, f"edge count must be non-negative, got {m}", ValueError)
    max_edges = n * (n - 1) // 2
    require(
        m <= max_edges,
        f"cannot place {m} simple edges on {n} vertices (max {max_edges})",
        ValueError,
    )
    rng = as_generator(seed)
    if m == 0:
        e = np.empty(0, dtype=np.int64)
        return from_edges(n, e, e)

    # Oversample to absorb expected collision/loop losses.
    batch = int(m * 1.15) + 16
    u = rng.integers(0, n, size=batch, dtype=np.int64)
    v = rng.integers(0, n, size=batch, dtype=np.int64)
    cu, cv = canonical_edges(n, u, v)
    attempts = 0
    while exact and cu.size < m:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"failed to collect {m} distinct edges after {max_attempts} "
                f"rounds (n={n}); graph too dense for rejection sampling"
            )
        deficit = m - cu.size
        extra = max(4 * deficit + 16, 64)
        nu = rng.integers(0, n, size=extra, dtype=np.int64)
        nv = rng.integers(0, n, size=extra, dtype=np.int64)
        au = np.concatenate([cu, nu])
        av = np.concatenate([cv, nv])
        cu, cv = canonical_edges(n, au, av)
    if cu.size > m:
        # Drop a uniform subset to hit exactly m (order within the
        # canonical list carries no information).
        keep = rng.choice(cu.size, size=m, replace=False)
        cu, cv = cu[keep], cv[keep]
    return from_edges(n, cu, cv)


def gnp_random_graph(n: int, p: float, seed: SeedLike = None) -> CSRGraph:
    """Erdős–Rényi G(n, p): every pair is an edge independently w.p. *p*.

    Used by the theory validation suite (the prior work of Coppersmith et
    al. and Calkin–Frieze analyzed exactly this model).  The number of
    edges is drawn from the exact binomial, then that many distinct edges
    are sampled uniformly — equivalent to per-pair Bernoulli draws but
    ``O(m)`` instead of ``O(n^2)``.
    """
    n = check_positive_int(n, "n")
    require(0.0 <= p <= 1.0, f"p must lie in [0, 1], got {p}", ValueError)
    rng = as_generator(seed)
    max_edges = n * (n - 1) // 2
    m = int(rng.binomial(max_edges, p)) if max_edges > 0 else 0
    return uniform_random_graph(n, m, rng)
