"""Deterministic structured graph families.

These exercise the *adversarial graph, random order* setting that
distinguishes the paper's Theorem 3.5 from the random-graph analyses of
Coppersmith et al. and Calkin–Frieze: the dependence-length bound must hold
on paths, grids, stars, and complete graphs too.  The complete graph is the
paper's own example of a priority DAG whose longest path is Ω(n) while the
dependence length is O(1).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builders import from_edges
from repro.graphs.csr import CSRGraph
from repro.util.validation import check_int, check_positive_int, require

__all__ = [
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "triangular_grid_graph",
    "torus_graph",
    "balanced_tree",
    "hypercube_graph",
    "complete_bipartite_graph",
]


def empty_graph(n: int) -> CSRGraph:
    """*n* isolated vertices, no edges (n may be 0 — wait, n >= 0)."""
    n = check_int(n, "n")
    require(n >= 0, f"n must be non-negative, got {n}", ValueError)
    e = np.empty(0, dtype=np.int64)
    return from_edges(max(n, 0), e, e) if n > 0 else CSRGraph(np.zeros(1, dtype=np.int64), e)


def path_graph(n: int) -> CSRGraph:
    """Path 0-1-2-...-(n-1)."""
    n = check_positive_int(n, "n")
    i = np.arange(n - 1, dtype=np.int64)
    return from_edges(n, i, i + 1)


def cycle_graph(n: int) -> CSRGraph:
    """Cycle on *n* >= 3 vertices."""
    n = check_positive_int(n, "n")
    require(n >= 3, f"a simple cycle needs n >= 3, got {n}", ValueError)
    i = np.arange(n, dtype=np.int64)
    return from_edges(n, i, (i + 1) % n)


def complete_graph(n: int) -> CSRGraph:
    """Clique K_n — the paper's Ω(n)-longest-path / O(1)-dependence example."""
    n = check_positive_int(n, "n")
    iu = np.triu_indices(n, k=1)
    return from_edges(n, iu[0].astype(np.int64), iu[1].astype(np.int64))


def star_graph(n: int) -> CSRGraph:
    """Star: center 0 connected to 1..n-1 (extreme degree skew)."""
    n = check_positive_int(n, "n")
    leaves = np.arange(1, n, dtype=np.int64)
    centers = np.zeros(n - 1, dtype=np.int64)
    return from_edges(n, centers, leaves)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """rows x cols 4-neighbor grid (vertex ``r*cols + c``)."""
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    r, c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    vid = (r * cols + c).astype(np.int64)
    us = []
    vs = []
    if cols > 1:
        us.append(vid[:, :-1].ravel())
        vs.append(vid[:, 1:].ravel())
    if rows > 1:
        us.append(vid[:-1, :].ravel())
        vs.append(vid[1:, :].ravel())
    if not us:
        e = np.empty(0, dtype=np.int64)
        return from_edges(rows * cols, e, e)
    return from_edges(rows * cols, np.concatenate(us), np.concatenate(vs))


def triangular_grid_graph(rows: int, cols: int) -> CSRGraph:
    """Planar triangulated grid: 4-neighbor grid plus one diagonal per cell.

    Adding the ``(r, c)``–``(r+1, c+1)`` diagonal to every grid cell keeps
    the drawing planar (each square splits into two triangles) while
    raising interior degree to 6 — the standard planar-mesh workload for
    the dynamic-session suite, where a localized edge mutation should
    perturb only a geometrically local priority-DAG region.
    """
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    r, c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    vid = (r * cols + c).astype(np.int64)
    us = []
    vs = []
    if cols > 1:
        us.append(vid[:, :-1].ravel())
        vs.append(vid[:, 1:].ravel())
    if rows > 1:
        us.append(vid[:-1, :].ravel())
        vs.append(vid[1:, :].ravel())
    if rows > 1 and cols > 1:
        us.append(vid[:-1, :-1].ravel())
        vs.append(vid[1:, 1:].ravel())
    if not us:
        e = np.empty(0, dtype=np.int64)
        return from_edges(rows * cols, e, e)
    return from_edges(rows * cols, np.concatenate(us), np.concatenate(vs))


def torus_graph(rows: int, cols: int) -> CSRGraph:
    """Grid with wraparound in both dimensions (4-regular for sizes >= 3)."""
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    r, c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    vid = (r * cols + c).astype(np.int64)
    right = (r * cols + (c + 1) % cols).astype(np.int64)
    down = (((r + 1) % rows) * cols + c).astype(np.int64)
    u = np.concatenate([vid.ravel(), vid.ravel()])
    v = np.concatenate([right.ravel(), down.ravel()])
    return from_edges(rows * cols, u, v)


def hypercube_graph(dimension: int) -> CSRGraph:
    """d-dimensional hypercube: 2^d vertices, edges between ids differing
    in one bit.  A d-regular, diameter-d family the theory suites use for
    a structured log-degree regime."""
    dimension = check_int(dimension, "dimension")
    require(0 <= dimension <= 20,
            f"dimension must lie in [0, 20], got {dimension}", ValueError)
    n = 1 << dimension
    if dimension == 0:
        return empty_graph(1)
    ids = np.arange(n, dtype=np.int64)
    us = []
    vs = []
    for bit in range(dimension):
        us.append(ids)
        vs.append(ids ^ (1 << bit))
    return from_edges(n, np.concatenate(us), np.concatenate(vs))


def complete_bipartite_graph(a: int, b: int) -> CSRGraph:
    """K_{a,b}: parts {0..a-1} and {a..a+b-1}, all cross edges.

    Bipartite extremes stress the matching engines (perfect matchings
    exist iff a == b) and give line graphs with huge cliques.
    """
    a = check_positive_int(a, "a")
    b = check_positive_int(b, "b")
    left = np.repeat(np.arange(a, dtype=np.int64), b)
    right = np.tile(np.arange(a, a + b, dtype=np.int64), a)
    return from_edges(a + b, left, right)


def balanced_tree(branching: int, height: int) -> CSRGraph:
    """Complete *branching*-ary tree of the given height (height 0 = root only)."""
    branching = check_positive_int(branching, "branching")
    height = check_int(height, "height")
    require(height >= 0, f"height must be non-negative, got {height}", ValueError)
    if branching == 1:
        return path_graph(height + 1)
    n = (branching ** (height + 1) - 1) // (branching - 1)
    if n == 1:
        return empty_graph(1)
    children = np.arange(1, n, dtype=np.int64)
    parents = (children - 1) // branching
    return from_edges(n, parents, children)
