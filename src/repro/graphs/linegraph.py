"""Line-graph construction (the MM → MIS reduction of Section 5).

The paper proves Lemma 5.1 by observing that greedy maximal matching on
``G`` under edge order π is *exactly* greedy MIS on the line graph ``L(G)``
under the same order.  The reduction can be quadratically larger than ``G``
(which is why the paper implements MM directly), but it is invaluable for
testing: the property suite checks engine outputs against it on small
graphs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.csr import CSRGraph, EdgeList, expand_offsets
from repro.graphs.builders import from_edges

__all__ = ["line_graph"]


def line_graph(graph: CSRGraph) -> Tuple[CSRGraph, EdgeList]:
    """Build ``L(G)``: one vertex per edge of *G*, adjacency = shared endpoint.

    Returns ``(L, edge_list)`` where vertex ``i`` of ``L`` corresponds to
    edge ``i`` of ``edge_list`` (which is ``graph.edge_list()``, the
    canonical numbering shared with the matching engines).

    Cost is ``O(sum_v deg(v)^2)`` — all pairs of edges at each vertex —
    built fully vectorized: for each vertex the incident-edge segment is
    expanded into (segment-id, position) pairs and all ordered pairs within
    a segment are emitted via a repeat/arange product.
    """
    el = graph.edge_list()
    offsets, edge_ids = el.incidence()
    n = graph.num_vertices
    degs = np.diff(offsets)
    # For a vertex with k incident edges we emit k*(k-1)/2 unordered pairs.
    pair_counts = degs * (degs - 1) // 2
    total = int(pair_counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return from_edges(el.num_edges, empty, empty), el

    # Emit pairs (i, j) with i < j over each segment, vectorized per
    # "row": for r = 1..k-1, segment contributes pairs (j - r, j) for
    # j = r..k-1.  We loop over r up to the max degree; each iteration is
    # one vectorized slice over all segments with degree > r.  Total work
    # stays O(sum deg^2) because iteration r touches only segments with
    # deg > r.
    us = []
    vs = []
    max_deg = int(degs.max(initial=0))
    starts = offsets[:-1]
    for r in range(1, max_deg):
        active = degs > r
        if not np.any(active):
            break
        seg_starts = starts[active]
        seg_degs = degs[active]
        counts = seg_degs - r
        lo = np.repeat(seg_starts, counts)
        seg_starts_rep = np.zeros(counts.sum(), dtype=np.int64)
        # position within the emitted run for each segment
        run_starts = np.zeros(counts.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=run_starts[1:])
        within = np.arange(int(counts.sum()), dtype=np.int64) - np.repeat(run_starts, counts)
        first = edge_ids[lo + within]
        second = edge_ids[lo + within + r]
        us.append(first)
        vs.append(second)
    u = np.concatenate(us)
    v = np.concatenate(vs)
    return from_edges(el.num_edges, u, v), el
