"""Builders: turn edge soups, adjacency lists, or networkx graphs into CSR.

All builders produce a *simple* undirected :class:`~repro.graphs.csr.CSRGraph`:
self-loops are dropped and parallel edges are merged.  The canonicalization
is fully vectorized: edges are encoded as ``min*n + max`` 64-bit keys,
deduplicated with ``np.unique``, then symmetrized and counting-sorted into
CSR.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidGraphError
from repro.graphs.csr import CSRGraph
from repro.util.validation import check_index_array, check_int, require

__all__ = [
    "from_edges",
    "from_adjacency_lists",
    "from_networkx",
    "to_networkx",
    "canonical_edges",
]


def canonical_edges(
    n: int, u: np.ndarray, v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonicalize an edge soup: drop self-loops, dedup, return ``u < v``.

    Returns sorted (by ``(u, v)``) endpoint arrays.  Works for any ``n``
    with ``n**2`` representable in ``int64`` (n < 3e9 — far beyond what a
    single node can hold anyway).

    Parameters
    ----------
    n:
        Number of vertices; endpoints are validated against ``[0, n)``.
    u, v:
        Endpoint arrays of equal length (directed or undirected soup).
    """
    n = check_int(n, "n")
    u = check_index_array(u, n, "u")
    v = check_index_array(v, n, "v")
    require(u.size == v.size, "endpoint arrays must have equal length", InvalidGraphError)
    keep = u != v
    u, v = u[keep], v[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keys = lo * np.int64(n) + hi
    keys = np.unique(keys)
    return keys // n, keys % n


def from_edges(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
) -> CSRGraph:
    """Build a simple undirected CSR graph from endpoint arrays.

    Self-loops are removed and duplicate/parallel edges merged.  Neighbor
    lists come out sorted by neighbor id (a counting-sort artifact that
    tests rely on for reproducibility, though no algorithm requires it).

    Examples
    --------
    >>> g = from_edges(3, np.array([0, 1, 1, 0]), np.array([1, 0, 2, 0]))
    >>> g.num_edges   # {0,1} deduped, {0,0} self-loop dropped, {1,2} kept
    2
    """
    cu, cv = canonical_edges(n, u, v)
    # Symmetrize: each undirected edge contributes two directed arcs.
    src = np.concatenate([cu, cv])
    dst = np.concatenate([cv, cu])
    order = np.argsort(src, kind="stable")
    src_sorted = src[order]
    dst_sorted = dst[order]
    counts = np.bincount(src_sorted, minlength=n).astype(np.int64, copy=False)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # Within each vertex, sort neighbors for a canonical layout.
    neighbors = np.empty_like(dst_sorted)
    # Vectorized per-segment sort: sort by (src, dst) pairs jointly.
    pair_order = np.lexsort((dst, src))
    neighbors = dst[pair_order]
    return CSRGraph(offsets, neighbors)


def from_adjacency_lists(adjacency: Sequence[Iterable[int]]) -> CSRGraph:
    """Build a graph from a list of neighbor iterables.

    The input may be asymmetric or contain duplicates/self-loops; it is
    canonicalized like :func:`from_edges`.

    >>> g = from_adjacency_lists([[1, 2], [0], [0]])
    >>> g.num_edges
    2
    """
    n = len(adjacency)
    us, vs = [], []
    for i, nbrs in enumerate(adjacency):
        for j in nbrs:
            us.append(i)
            vs.append(int(j))
    return from_edges(n, np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64))


def from_networkx(nx_graph) -> Tuple[CSRGraph, dict]:
    """Convert a ``networkx.Graph`` to CSR.

    Returns ``(graph, node_to_index)`` since networkx nodes may be
    arbitrary hashables.  Requires networkx (an optional dependency).
    """
    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    m = nx_graph.number_of_edges()
    u = np.empty(m, dtype=np.int64)
    v = np.empty(m, dtype=np.int64)
    for k, (a, b) in enumerate(nx_graph.edges()):
        u[k] = index[a]
        v[k] = index[b]
    return from_edges(len(nodes), u, v), index


def to_networkx(graph: CSRGraph):
    """Convert a CSR graph to a ``networkx.Graph`` (vertex ids 0..n-1)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    el = graph.edge_list()
    g.add_edges_from(zip(el.u.tolist(), el.v.tolist()))
    return g
