"""Monte-Carlo estimation of the lemmas' failure probabilities.

The paper's lemmas are "with high probability" statements; the validators
in :mod:`repro.theory.lemmas` check single draws.  This module estimates
the actual failure *rates* over many random orders so the suites can
compare them against the proofs' explicit bounds:

* Lemma 3.1: residual degree exceeds ``d`` after an ``(l/d)``-prefix with
  probability at most ``n / e^l``.
* Lemma 3.3: a randomly ordered ``(r/d)``-prefix has a path of length
  ``4e·l`` or longer with probability at most ``(r/l)^l``.

Estimates come with a conservative one-sided confidence bound so tests
can assert "observed rate is consistent with the proven bound" without
flaking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.core.orderings import random_priorities
from repro.graphs.csr import CSRGraph
from repro.theory.lemmas import longest_path_in_prefix, max_degree_after_prefix
from repro.util.rng import SeedLike, spawn

__all__ = [
    "FailureEstimate",
    "estimate_failure_rate",
    "degree_reduction_failure_rate",
    "path_length_failure_rate",
]


@dataclass(frozen=True)
class FailureEstimate:
    """Observed failure rate over Monte-Carlo trials.

    ``upper_bound_95`` is the one-sided 95% Clopper–Pearson-style bound
    computed from the rule of three when no failures are observed, and a
    normal approximation otherwise — intentionally conservative, for
    flake-free test assertions.
    """

    trials: int
    failures: int

    @property
    def rate(self) -> float:
        """Point estimate ``failures / trials``."""
        return self.failures / self.trials

    @property
    def upper_bound_95(self) -> float:
        """Conservative one-sided 95% upper confidence bound on the rate."""
        if self.failures == 0:
            return min(1.0, 3.0 / self.trials)  # rule of three
        p = self.rate
        half_width = 1.6449 * math.sqrt(p * (1.0 - p) / self.trials)
        return min(1.0, p + half_width + 1.0 / self.trials)


def estimate_failure_rate(
    trial: Callable[[SeedLike], bool],
    trials: int,
    seed: SeedLike = 0,
) -> FailureEstimate:
    """Run ``trial(stream)`` *trials* times; count ``True`` returns as failures.

    Each invocation receives an independent child generator, so the whole
    estimate is reproducible from one seed.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    streams = spawn(seed, trials)
    failures = sum(1 for s in streams if trial(s))
    return FailureEstimate(trials=trials, failures=failures)


def degree_reduction_failure_rate(
    graph: CSRGraph,
    d: int,
    ell: float,
    trials: int = 50,
    seed: SeedLike = 0,
) -> FailureEstimate:
    """Lemma 3.1 failure rate: P[residual max degree > d] after an
    ``(ell/d)``-prefix, estimated over random orders.

    The proof bounds this by ``n / e^ell``.
    """
    n = graph.num_vertices
    prefix = min(n, max(1, int(math.ceil(ell * n / d))))

    def trial(stream) -> bool:
        ranks = random_priorities(n, stream)
        return max_degree_after_prefix(graph, ranks, prefix) > d

    return estimate_failure_rate(trial, trials, seed)


def path_length_failure_rate(
    graph: CSRGraph,
    prefix_size: int,
    threshold: int,
    trials: int = 50,
    seed: SeedLike = 0,
) -> FailureEstimate:
    """Lemma 3.3 failure rate: P[longest prefix path >= threshold],
    estimated over random orders."""
    n = graph.num_vertices

    def trial(stream) -> bool:
        ranks = random_priorities(n, stream)
        return longest_path_in_prefix(graph, ranks, prefix_size) >= threshold

    return estimate_failure_rate(trial, trials, seed)
