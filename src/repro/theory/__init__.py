"""Empirical validators for the paper's lemmas and theorems.

Each function runs the *process the proof reasons about* and returns the
measured quantity, so tests (and the theory benches) can check the claimed
high-probability bounds with explicit constants:

* Lemma 3.1 / Corollary 3.2 — degree reduction after a prefix.
* Lemma 3.3 / Corollary 3.4 — longest path inside a random prefix.
* Lemmas 4.3 / 4.4 — internal-edge sparsity of small prefixes.
* Theorem 3.5 — O(log Δ · log n) dependence length.
"""

from repro.theory.lemmas import (
    max_degree_after_prefix,
    longest_path_in_prefix,
    internal_edge_count,
    vertices_with_internal_edges,
)
from repro.theory.bounds import (
    dependence_length_bound,
    path_length_bound,
    degree_reduction_prefix_size,
)
from repro.theory.scaling import ScalingFit, fit_power_law, dependence_scaling
from repro.theory.montecarlo import (
    FailureEstimate,
    estimate_failure_rate,
    degree_reduction_failure_rate,
    path_length_failure_rate,
)

__all__ = [
    "ScalingFit",
    "fit_power_law",
    "dependence_scaling",
    "FailureEstimate",
    "estimate_failure_rate",
    "degree_reduction_failure_rate",
    "path_length_failure_rate",
    "max_degree_after_prefix",
    "longest_path_in_prefix",
    "internal_edge_count",
    "vertices_with_internal_edges",
    "dependence_length_bound",
    "path_length_bound",
    "degree_reduction_prefix_size",
]
