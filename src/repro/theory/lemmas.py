"""Measured counterparts of Lemmas 3.1, 3.3, 4.3 and 4.4.

These are *measurement* functions: they perform the exact process each
lemma analyzes (greedy-process a prefix, orient a prefix's edges, count a
prefix's internal structure) and return the observed value.  The test and
bench suites compare the observations to the bounds in
:mod:`repro.theory.bounds`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.orderings import (
    permutation_from_ranks,
    random_priorities,
    validate_priorities,
)
from repro.core.status import IN_SET, KNOCKED_OUT, UNDECIDED, new_vertex_status
from repro.graphs.csr import CSRGraph
from repro.util.rng import SeedLike
from repro.util.validation import check_positive_int

__all__ = [
    "max_degree_after_prefix",
    "longest_path_in_prefix",
    "internal_edge_count",
    "vertices_with_internal_edges",
]


def _prefix_vertices(graph: CSRGraph, ranks: np.ndarray, prefix_size: int) -> np.ndarray:
    perm = permutation_from_ranks(ranks)
    return perm[:prefix_size]


def max_degree_after_prefix(
    graph: CSRGraph,
    ranks: Optional[np.ndarray] = None,
    prefix_size: int = 1,
    *,
    seed: SeedLike = None,
) -> int:
    """Lemma 3.1's quantity: max *residual* degree after a prefix resolves.

    Greedily processes the first *prefix_size* vertices of the order
    (Algorithm 1 restricted to the prefix), removes the resulting set
    members and their neighbors, and returns the maximum degree of the
    induced subgraph on the surviving vertices.

    Lemma 3.1: for an ``(l/d)``-prefix this is at most ``d`` w.p.
    ``>= 1 - n/e^l``.
    """
    n = graph.num_vertices
    if ranks is None:
        ranks = random_priorities(n, seed)
    ranks = validate_priorities(ranks, n)
    prefix_size = check_positive_int(prefix_size, "prefix_size")
    prefix_size = min(prefix_size, n)

    status = new_vertex_status(n)
    offsets, neighbors = graph.offsets, graph.neighbors
    for v in _prefix_vertices(graph, ranks, prefix_size).tolist():
        if status[v] != UNDECIDED:
            continue
        status[v] = IN_SET
        nbrs = neighbors[offsets[v]:offsets[v + 1]]
        status[nbrs] = KNOCKED_OUT
    alive = status == UNDECIDED
    if not alive.any():
        return 0
    src, dst = graph.arcs()
    both = alive[src] & alive[dst]
    if not both.any():
        return 0
    residual = np.bincount(src[both], minlength=n)
    return int(residual.max())


def longest_path_in_prefix(
    graph: CSRGraph,
    ranks: Optional[np.ndarray] = None,
    prefix_size: int = 1,
    *,
    seed: SeedLike = None,
) -> int:
    """Lemma 3.3's quantity: longest directed path in the prefix's DAG.

    Counts vertices on the longest priority-decreasing path within the
    subgraph induced by the first *prefix_size* vertices of the order.
    Lemma 3.3/Corollary 3.4: for an ``O(log(n)/d)``-prefix of a
    degree-``<= d`` graph this is ``O(log n)`` w.h.p.
    """
    n = graph.num_vertices
    if ranks is None:
        ranks = random_priorities(n, seed)
    ranks = validate_priorities(ranks, n)
    prefix_size = check_positive_int(prefix_size, "prefix_size")
    prefix_size = min(prefix_size, n)
    prefix = _prefix_vertices(graph, ranks, prefix_size)
    in_prefix = np.zeros(n, dtype=bool)
    in_prefix[prefix] = True
    offsets, neighbors = graph.offsets, graph.neighbors
    lp = np.zeros(n, dtype=np.int64)
    longest = 0
    # Process in priority order so parents are finalized before children.
    for v in prefix.tolist():
        nbrs = neighbors[offsets[v]:offsets[v + 1]]
        best = 0
        if nbrs.size:
            mask = in_prefix[nbrs] & (ranks[nbrs] < ranks[v])
            if mask.any():
                best = int(lp[nbrs[mask]].max())
        lp[v] = best + 1
        if lp[v] > longest:
            longest = int(lp[v])
    return longest


def internal_edge_count(
    graph: CSRGraph,
    ranks: Optional[np.ndarray] = None,
    prefix_size: int = 1,
    *,
    seed: SeedLike = None,
) -> int:
    """Lemma 4.3's quantity: number of edges with both endpoints in the prefix.

    Lemma 4.3: for a ``δ < k/d`` prefix ``P`` of a degree-``<= d`` graph,
    the expectation is ``O(k |P|)`` — sublinear in ``|P|`` for ``k << 1``.
    """
    n = graph.num_vertices
    if ranks is None:
        ranks = random_priorities(n, seed)
    ranks = validate_priorities(ranks, n)
    prefix_size = check_positive_int(prefix_size, "prefix_size")
    prefix_size = min(prefix_size, n)
    prefix = _prefix_vertices(graph, ranks, prefix_size)
    in_prefix = np.zeros(n, dtype=bool)
    in_prefix[prefix] = True
    src, dst = graph.arcs()
    internal_arcs = int(np.count_nonzero(in_prefix[src] & in_prefix[dst]))
    return internal_arcs // 2


def vertices_with_internal_edges(
    graph: CSRGraph,
    ranks: Optional[np.ndarray] = None,
    prefix_size: int = 1,
    *,
    seed: SeedLike = None,
) -> int:
    """Lemma 4.4's quantity: prefix vertices with >= 1 internal edge.

    Bounded by twice :func:`internal_edge_count` (each edge touches two
    vertices) — the bound the lemma's one-line proof uses.
    """
    n = graph.num_vertices
    if ranks is None:
        ranks = random_priorities(n, seed)
    ranks = validate_priorities(ranks, n)
    prefix_size = check_positive_int(prefix_size, "prefix_size")
    prefix_size = min(prefix_size, n)
    prefix = _prefix_vertices(graph, ranks, prefix_size)
    in_prefix = np.zeros(n, dtype=bool)
    in_prefix[prefix] = True
    src, dst = graph.arcs()
    both = in_prefix[src] & in_prefix[dst]
    return int(np.unique(src[both]).size)
