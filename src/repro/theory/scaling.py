"""Empirical scaling analysis — probing the paper's open question.

Section 7: "An open question is whether the dependence length of our
algorithms can be improved to O(log n)."  While a proof is out of scope,
the question is measurable: fit the observed dependence length against
``log n`` across a geometric size sweep and report the apparent exponent
α in ``dep ≈ c · (log n)^α``.  Theorem 3.5 guarantees α ≤ 2; an observed
α near 1 is (non-conclusive) evidence for the conjecture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.dependence import dependence_length
from repro.core.orderings import random_priorities
from repro.graphs.csr import CSRGraph
from repro.util.rng import SeedLike, spawn

__all__ = ["ScalingFit", "fit_power_law", "dependence_scaling"]


@dataclass(frozen=True)
class ScalingFit:
    """Least-squares fit of ``y ≈ c · x^alpha`` in log–log space."""

    alpha: float
    log_c: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Model value at *x*."""
        return math.exp(self.log_c) * x ** self.alpha


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> ScalingFit:
    """Fit ``y = c·x^alpha`` by least squares on ``(log x, log y)``.

    Requires at least two strictly positive samples in each coordinate.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError(
            f"need >= 2 paired samples, got {x.size} xs and {y.size} ys"
        )
    if (x <= 0).any() or (y <= 0).any():
        raise ValueError("power-law fitting requires strictly positive data")
    lx, ly = np.log(x), np.log(y)
    alpha, log_c = np.polyfit(lx, ly, 1)
    pred = alpha * lx + log_c
    ss_res = float(((ly - pred) ** 2).sum())
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return ScalingFit(alpha=float(alpha), log_c=float(log_c), r_squared=r2)


def dependence_scaling(
    make_graph: Callable[[int], CSRGraph],
    sizes: Sequence[int],
    *,
    seeds_per_size: int = 3,
    seed: SeedLike = 0,
) -> ScalingFit:
    """Fit dependence length against ``log n`` over a size sweep.

    For each ``n`` in *sizes*, builds ``make_graph(n)`` and measures the
    maximum dependence length over *seeds_per_size* random orders; the
    power law is fit with ``x = log n``, so ``alpha`` is the apparent
    exponent of the polylog (the open question asks whether it is 1).
    """
    if len(sizes) < 2:
        raise ValueError("need at least two sizes to fit a scaling exponent")
    xs: List[float] = []
    ys: List[float] = []
    streams = spawn(seed, len(sizes) * seeds_per_size)
    k = 0
    for n in sizes:
        g = make_graph(int(n))
        deps = []
        for _ in range(seeds_per_size):
            ranks = random_priorities(g.num_vertices, streams[k])
            k += 1
            deps.append(dependence_length(g, ranks))
        xs.append(math.log(max(g.num_vertices, 2)))
        ys.append(max(deps))
    return fit_power_law(xs, ys)
