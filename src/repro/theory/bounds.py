"""Closed-form bounds from the paper, with explicit constants.

The asymptotic statements are turned into checkable inequalities by fixing
constants generous enough to hold at the scales the suites run (the paper's
proofs give constants like ``4e`` for path lengths; we keep them visible so
a failing test names the exact bound that broke).
"""

from __future__ import annotations

import math

__all__ = [
    "dependence_length_bound",
    "path_length_bound",
    "degree_reduction_prefix_size",
]


def _log2(x: float) -> float:
    return math.log2(max(x, 2.0))


def dependence_length_bound(n: int, max_degree: int, constant: float = 6.0) -> float:
    """Theorem 3.5: dependence length ``<= c · log2(Δ+2) · log2(n)`` w.h.p.

    The default ``c = 6`` is loose at small n (where additive terms
    dominate) yet tight enough that a superlogarithmic dependence chain —
    e.g. from an adversarial order — blows through it immediately.
    """
    if n <= 1:
        return 1.0
    return constant * _log2(max_degree + 2) * _log2(n)


def path_length_bound(n: int, constant: float = 4 * math.e) -> float:
    """Corollary 3.4: longest path in an ``O(log n / d)``-prefix.

    The proof of Lemma 3.3 yields paths shorter than ``4e·l`` with
    ``l = O(log n)``; we expose the ``4e`` constant directly.
    """
    if n <= 1:
        return 1.0
    return constant * _log2(n)


def degree_reduction_prefix_size(n: int, d: int, ell: float) -> int:
    """Lemma 3.1's prefix size: the ``(l/d)``-prefix has ``ceil(l·n/d)`` slots.

    After greedily resolving a prefix of this size, all residual degrees
    are at most *d* with probability ``>= 1 - n/e^l``.
    """
    if d < 1:
        raise ValueError(f"degree bound d must be >= 1, got {d}")
    if ell <= 0:
        raise ValueError(f"ell must be positive, got {ell}")
    return min(n, int(math.ceil(ell * n / d)))
