"""Asyncio HTTP gateway: the resilient network front door.

:class:`HTTPGateway` puts a small, stdlib-only HTTP/1.1 server in front
of a :class:`~repro.service.SolverService`, designed failure-first:

* **deadline propagation** — a per-request ``timeout_s`` (body field or
  ``X-Repro-Timeout-S`` header) flows into
  :class:`~repro.service.SolveRequest.timeout_seconds`, through the
  admission queue, and into the worker as ``Budget(max_seconds=…)``.
  An expired deadline is a ``504`` carrying the typed error name —
  never a hung socket: the gateway bounds its own wait at the deadline
  plus the service grace plus ``deadline_slack_s``.
* **load shedding** — admission rides the service's bounded queue and
  (when enabled) the AIMD :class:`~repro.resilience.AdaptiveLimiter`;
  a shed request is a ``429`` with ``Retry-After`` derived from the
  observed p95 solve latency.  Request bodies are bounded
  (``413`` past ``max_body_bytes``), concurrent connections are bounded
  (``503`` past ``max_connections``), and a client that trickles its
  request head or body is cut off (``408``) after
  ``header_timeout_s`` / ``body_timeout_s`` — the slow-loris defense.
* **serve-stale degraded mode** — solves go through
  :meth:`~repro.service.SolverService.solve_cached`: when the backend
  cannot serve (breaker chain open, workers dead) but a resident cache
  entry exists for the exact content address, the entry is served with
  ``X-Repro-Degraded: stale`` instead of a ``503``.  Determinism makes
  this safe: the stale answer is bit-identical to a fresh solve.
* **lifecycle** — ``SIGTERM``/``SIGINT`` trigger a graceful drain
  (stop accepting, finish in-flight up to ``drain_timeout_s``, then
  shut the service down); a :class:`~repro.resilience.Supervisor`
  probes the gateway's event-loop heartbeat from a plain thread, so a
  wedged loop surfaces in ``/v1/health`` instead of silent timeouts.

Endpoints (all JSON)::

    POST   /v1/solve           one solve (inline graph or registered name)
    POST   /v1/batch           {"requests": [...]} -> per-item results
    GET    /v1/health          cross-layer report; 200 ok / 207 degraded /
                               503 critical
    GET    /v1/metrics         per-endpoint latency percentiles + gateway,
                               cache, breaker, and backpressure counters
    POST   /v1/graphs          register a graph as a shared segment (+warm)
    DELETE /v1/graphs/{name}   release a registered graph

The HTTP status taxonomy mirrors the CLI exit-code taxonomy: every
error response body is ``{"error": "<TypedErrorName>", "message": …}``
with the error class from :mod:`repro.errors` — an untyped 500 is a bug
(and the chaos harness asserts there are none).
"""

from __future__ import annotations

import asyncio
import functools
import json
import math
import signal
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.options import SolveOptions
from repro.errors import DeadlineExceededError, EngineError, ReproError
from repro.service import schema as wire_schema
from repro.service.config import ServiceConfig, SolveRequest
from repro.service.service import SolverService

__all__ = ["GatewayConfig", "HTTPGateway", "request_json"]

#: Cap on the request head (request line + headers).
_HEADER_LIMIT = 64 * 1024

#: HTTP status -> typed error name from the repro taxonomy.  Order of
#: lookup is the exception MRO, so subclasses (QueueFullError before
#: ServiceError) map to their specific status.
_STATUS_BY_ERROR: Dict[str, int] = {
    "GraphFormatError": 400,
    "InvalidGraphError": 400,
    "InvalidOrderingError": 400,
    "EngineError": 400,
    "InvariantViolationError": 500,
    "UnknownSessionError": 404,
    "VersionConflictError": 409,
    "SnapshotCorruptError": 503,
    "BudgetExceededError": 422,
    "QueueFullError": 429,
    "CircuitOpenError": 503,
    "WorkerCrashError": 503,
    "ServiceError": 503,
    "DeadlineExceededError": 504,
}

_REASONS = {
    200: "OK", 207: "Multi-Status", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: The legal solve-object field set — owned by :mod:`repro.service.schema`
#: so the gateway, the CLI, and ``SolveRequest`` cannot drift.
_SOLVE_FIELDS = wire_schema.SOLVE_FIELDS


class _HTTPError(Exception):
    """Internal: a request that maps straight to an error response."""

    def __init__(
        self, status: int, error: str, message: str, *, close: bool = False
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error = error
        self.message = message
        self.close = close


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs for :class:`HTTPGateway`.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks an ephemeral port (the bound
        address is on :attr:`HTTPGateway.address` after start).
    max_body_bytes:
        Bound on any request body (``413`` past it).
    max_connections:
        Bound on concurrently open connections (``503`` past it); idle
        flood connections are further cut by ``header_timeout_s``.
    header_timeout_s, body_timeout_s:
        Slow-loris defense: a client that has not delivered the full
        request head / declared body within these windows gets ``408``
        and the connection is closed.
    drain_timeout_s:
        Graceful-shutdown bound: in-flight requests get this long to
        finish after the listener closes.
    default_timeout_s:
        Deadline applied to solve requests that do not set one
        (``None``: no deadline unless the request asks).
    deadline_slack_s:
        Socket-side grace the gateway waits past a request's deadline
        plus the service's ``deadline_grace`` before answering ``504``
        itself — the "never a hung socket" bound.
    retry_after_floor_s:
        Minimum ``Retry-After`` on a ``429`` (the ceiling is twice the
        observed p95 solve latency).
    heartbeat_interval_s, wedged_after_s:
        The event loop stamps a heartbeat every interval; a probe that
        finds the stamp older than ``wedged_after_s`` reports the loop
        wedged (surfaced in ``/v1/health``).
    supervise_interval_s:
        Period of the gateway-owned
        :class:`~repro.resilience.Supervisor` probing service health
        and the loop heartbeat from a plain thread; ``None`` disables.
    executor_threads:
        Threads bridging the event loop to the blocking service API
        (default ``2 * workers + 4``).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_body_bytes: int = 8 * 1024 * 1024
    max_connections: int = 64
    header_timeout_s: float = 5.0
    body_timeout_s: float = 10.0
    drain_timeout_s: float = 10.0
    default_timeout_s: Optional[float] = None
    deadline_slack_s: float = 1.0
    retry_after_floor_s: float = 1.0
    heartbeat_interval_s: float = 0.25
    wedged_after_s: float = 5.0
    supervise_interval_s: Optional[float] = None
    executor_threads: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        for name in (
            "header_timeout_s", "body_timeout_s", "drain_timeout_s",
            "heartbeat_interval_s", "wedged_after_s",
        ):
            if not getattr(self, name) > 0:
                raise ValueError(f"{name} must be positive")
        for name in ("deadline_slack_s", "retry_after_floor_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.default_timeout_s is not None and not self.default_timeout_s > 0:
            raise ValueError(
                f"default_timeout_s must be positive, got {self.default_timeout_s}"
            )
        if (
            self.supervise_interval_s is not None
            and not self.supervise_interval_s > 0
        ):
            raise ValueError(
                f"supervise_interval_s must be positive, "
                f"got {self.supervise_interval_s}"
            )
        if self.executor_threads is not None and self.executor_threads < 1:
            raise ValueError(
                f"executor_threads must be >= 1, got {self.executor_threads}"
            )


@dataclass
class _GraphRecord:
    """One registered graph: CSR + edge-list views and the default π."""

    name: str
    graph: Any
    edges: Any
    ranks: Optional[np.ndarray]
    segment: Optional[str] = None
    fingerprint: Optional[str] = None
    warmed: int = 0


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body


def _status_for(exc: BaseException) -> Optional[int]:
    """HTTP status for a typed repro error (None: untyped)."""
    for cls in type(exc).__mro__:
        status = _STATUS_BY_ERROR.get(cls.__name__)
        if status is not None:
            return status
    return None


class HTTPGateway:
    """Stdlib asyncio HTTP front door over a :class:`SolverService`.

    The gateway owns the service lifecycle: :meth:`run` (or
    :meth:`start_in_thread`) starts the service if needed and
    :meth:`~SolverService.shutdown` runs on the way out.  Blocking
    service calls are bridged through a thread pool so the event loop
    never blocks on a solve.

    Examples
    --------
    >>> from repro.service.http import HTTPGateway          # doctest: +SKIP
    >>> gw = HTTPGateway(workers=2, cache_entries=64)       # doctest: +SKIP
    >>> gw.run()   # serves until SIGINT/SIGTERM, then drains
    """

    def __init__(
        self,
        service: Optional[SolverService] = None,
        config: Optional[GatewayConfig] = None,
        **service_overrides,
    ) -> None:
        if service is None:
            service = SolverService(ServiceConfig(**service_overrides))
        elif service_overrides:
            raise ValueError(
                "pass either a SolverService or service keyword overrides"
            )
        self.service = service
        self.config = config or GatewayConfig()
        self.address: Optional[Tuple[str, int]] = None
        self._graphs: Dict[str, _GraphRecord] = {}
        self._graphs_lock = threading.Lock()
        self._routes: Dict[str, Dict[str, Any]] = {}
        self._conns = 0
        self._conns_rejected = 0
        # Encoded-response cache: content address -> serialized body
        # bytes.  Determinism makes the body for one address immutable,
        # so a warm hit can skip JSON encoding entirely (at paper
        # scales the n-length status/ranks arrays dominate hit
        # latency).  Touched only from the event loop — no lock.
        self._body_cache: "OrderedDict[str, bytes]" = OrderedDict()
        self._body_cache_max = max(self.service.config.cache_entries, 64)
        self._body_cache_hits = 0
        self._untyped_errors = 0
        self._stale_served = 0
        self._shed = 0
        self._wedge_events = 0
        self._last_wedge_age: Optional[float] = None
        self._draining = False
        self._started_at: Optional[float] = None
        self._heartbeat = time.monotonic()
        self._inflight: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._supervisor = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_error: Optional[BaseException] = None

    # -- graph registration (programmatic side) ----------------------------

    def add_graph(self, name: str, graph, ranks=None) -> _GraphRecord:
        """Pre-register a graph before :meth:`run`; warmed at startup.

        The HTTP path (``POST /v1/graphs``) lands here too.  The graph
        is placed in shared memory on the service; with *ranks* given
        the MIS answer is pre-solved into the result cache, so the
        first ``{"graph": name}`` request is already a warm hit.
        """
        if not name or "/" in name:
            raise ValueError(f"graph name must be non-empty without '/': {name!r}")
        with self._graphs_lock:
            if name in self._graphs:
                raise KeyError(f"graph {name!r} is already registered")
            record = _GraphRecord(
                name=name,
                graph=graph,
                edges=graph.edge_list(),
                ranks=None if ranks is None else np.asarray(ranks),
            )
            self._graphs[name] = record
        if self.service._started:
            self._register_record(record)
        return record

    def _register_record(self, record: _GraphRecord) -> None:
        """Blocking: shared-segment registration + cache warmup."""
        shared = self.service.register_graph(record.graph, record.ranks)
        record.segment = shared.name
        record.fingerprint = shared.fingerprint
        if record.ranks is not None:
            record.warmed = self.service.warm_cache(
                "mis", record.graph, record.ranks
            )

    def _release_record(self, record: _GraphRecord) -> None:
        self.service.release_graph(record.graph)

    # -- lifecycle ---------------------------------------------------------

    async def start_async(self) -> "HTTPGateway":
        """Start the service, warm registered graphs, bind the listener."""
        cfg = self.config
        self._executor = ThreadPoolExecutor(
            max_workers=(
                cfg.executor_threads
                if cfg.executor_threads is not None
                else 2 * self.service.config.workers + 4
            ),
            thread_name_prefix="repro-gateway",
        )
        loop = asyncio.get_running_loop()
        self._loop = loop
        await loop.run_in_executor(self._executor, self.service.start)
        for record in list(self._graphs.values()):
            if record.segment is None:
                await loop.run_in_executor(
                    self._executor, self._register_record, record
                )
        self._server = await asyncio.start_server(
            self._handle_conn, cfg.host, cfg.port, limit=_HEADER_LIMIT
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._draining = False
        self._started_at = time.monotonic()
        self._heartbeat = time.monotonic()
        self._heartbeat_task = asyncio.ensure_future(self._beat())
        if cfg.supervise_interval_s is not None:
            from repro.resilience.supervisor import Supervisor

            self._supervisor = Supervisor(
                self.service,
                interval_s=cfg.supervise_interval_s,
                on_report=self._on_supervisor_report,
            ).start()
        return self

    async def stop_async(self) -> None:
        """Graceful drain: close the listener, finish in-flight, shut down."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = [t for t in self._inflight if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_timeout_s)
        for task in list(self._inflight):
            if not task.done():
                task.cancel()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        if self._supervisor is not None:
            self._supervisor.stop()
            self._supervisor = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._executor,
            functools.partial(
                self.service.shutdown, drain=True,
                timeout=self.config.drain_timeout_s,
            ),
        )
        with self._graphs_lock:
            for record in self._graphs.values():
                record.segment = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def _main(
        self,
        *,
        ready: Optional[threading.Event] = None,
        install_signals: bool = False,
    ) -> None:
        try:
            await self.start_async()
        except BaseException as exc:
            self._thread_error = exc
            # A partial start must not leave workers or the listener
            # behind — the pool's processes would hang interpreter exit.
            try:
                await self.stop_async()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
            if ready is not None:
                ready.set()
                return
            raise
        self._stop_event = asyncio.Event()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self._stop_event.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        if ready is not None:
            ready.set()
        await self._stop_event.wait()
        await self.stop_async()

    def run(self, *, install_signals: bool = True) -> int:
        """Serve until SIGINT/SIGTERM, drain gracefully, return exit code 0.

        With signal handlers installed, Ctrl-C is a clean drain-and-exit
        rather than a traceback: the listener closes, in-flight requests
        get ``drain_timeout_s`` to finish, and the service shuts down.
        """
        asyncio.run(self._main(install_signals=install_signals))
        return 0

    def start_in_thread(self, timeout: float = 30.0) -> "HTTPGateway":
        """Run the gateway on a daemon thread; returns once it is bound."""
        if self._thread is not None:
            raise RuntimeError("gateway thread already running")
        ready = threading.Event()
        self._thread_error = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(ready=ready)),
            name="repro-gateway-loop",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise TimeoutError(f"gateway did not start within {timeout}s")
        if self._thread_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise self._thread_error
        return self

    def stop_in_thread(self, timeout: float = 30.0) -> None:
        """Drain and stop a :meth:`start_in_thread` gateway."""
        if self._thread is None:
            return
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "HTTPGateway":
        return self.start_in_thread()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop_in_thread()

    # -- heartbeat / supervision -------------------------------------------

    async def _beat(self) -> None:
        while True:
            self._heartbeat = time.monotonic()
            await asyncio.sleep(self.config.heartbeat_interval_s)

    def heartbeat_age(self) -> float:
        """Seconds since the event loop last stamped its heartbeat."""
        return time.monotonic() - self._heartbeat

    def probe(self) -> Dict[str, Any]:
        """Thread-safe gateway liveness snapshot (used by the Supervisor)."""
        age = self.heartbeat_age()
        return {
            "listening": self._server is not None,
            "draining": self._draining,
            "connections": self._conns,
            "heartbeat_age_s": round(age, 3),
            "wedged": age > self.config.wedged_after_s,
            "wedge_events": self._wedge_events,
        }

    def _on_supervisor_report(self, report) -> None:
        probe = self.probe()
        if probe["wedged"]:
            self._wedge_events += 1
            self._last_wedge_age = probe["heartbeat_age_s"]

    # -- connection handling -----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining or self._conns >= self.config.max_connections:
            self._conns_rejected += 1
            await self._write(
                writer, 503,
                {
                    "error": "ConnectionLimitError",
                    "message": (
                        "gateway draining" if self._draining else
                        f"connection limit reached "
                        f"({self.config.max_connections})"
                    ),
                },
                close=True,
            )
            await self._close(writer)
            return
        self._conns += 1
        task = asyncio.current_task()
        self._inflight.add(task)
        try:
            while not self._draining:
                try:
                    request = await self._read_request(reader)
                except _HTTPError as exc:
                    await self._write(
                        writer, exc.status,
                        {"error": exc.error, "message": exc.message},
                        close=True,
                    )
                    break
                if request is None:
                    break
                keep = (
                    request.headers.get("connection", "").lower() != "close"
                )
                status, body, extra = await self._dispatch(request)
                keep = keep and not self._draining
                await self._write(writer, status, body, extra, close=not keep)
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conns -= 1
            self._inflight.discard(task)
            await self._close(writer)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_Request]:
        cfg = self.config
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), cfg.header_timeout_s
            )
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between requests
            raise _HTTPError(
                400, "BadRequestError", "truncated request head", close=True
            )
        except asyncio.LimitOverrunError:
            raise _HTTPError(
                431, "HeadersTooLargeError",
                f"request head exceeds {_HEADER_LIMIT} bytes", close=True,
            )
        except asyncio.TimeoutError:
            raise _HTTPError(
                408, "SlowClientError",
                f"request head not received within {cfg.header_timeout_s}s",
                close=True,
            )
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HTTPError(
                400, "BadRequestError",
                f"malformed request line: {lines[0]!r}", close=True,
            )
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HTTPError(
                    400, "BadRequestError",
                    f"malformed header line: {line!r}", close=True,
                )
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HTTPError(
                400, "BadRequestError", "non-integer Content-Length", close=True
            )
        if length > cfg.max_body_bytes:
            raise _HTTPError(
                413, "BodyTooLargeError",
                f"body of {length} bytes exceeds the "
                f"{cfg.max_body_bytes}-byte bound", close=True,
            )
        body = b""
        if length > 0:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), cfg.body_timeout_s
                )
            except asyncio.IncompleteReadError:
                raise _HTTPError(
                    400, "BadRequestError", "truncated request body", close=True
                )
            except asyncio.TimeoutError:
                raise _HTTPError(
                    408, "SlowClientError",
                    f"request body not received within {cfg.body_timeout_s}s",
                    close=True,
                )
        return _Request(method, path, headers, body)

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self, request: _Request
    ) -> Tuple[int, Any, Dict[str, str]]:
        route, handler = self._resolve(request)
        start = time.monotonic()
        extra: Dict[str, str] = {}
        try:
            if handler is None:
                status, body = 404, {
                    "error": "NotFoundError",
                    "message": f"no route {request.method} {request.path}",
                }
            else:
                status, body, extra = await handler(request)
        except _HTTPError as exc:
            status, body = exc.status, {
                "error": exc.error, "message": exc.message,
            }
        except Exception as exc:  # noqa: BLE001 — boundary of the taxonomy
            status = _status_for(exc)
            if status is None or not isinstance(
                exc, (ReproError, TimeoutError)
            ):
                self._untyped_errors += 1
                status = 500
            body = {"error": type(exc).__name__, "message": str(exc)}
            if status == 429:
                self._shed += 1
                extra = {"Retry-After": str(self._retry_after())}
        self._record(route, status, time.monotonic() - start)
        return status, body, extra

    def _resolve(self, request: _Request):
        method, path = request.method, request.path.split("?", 1)[0]
        if path == "/v1/solve" and method == "POST":
            return "POST /v1/solve", self._handle_solve
        if path == "/v1/batch" and method == "POST":
            return "POST /v1/batch", self._handle_batch
        if path == "/v1/health" and method == "GET":
            return "GET /v1/health", self._handle_health
        if path == "/v1/metrics" and method == "GET":
            return "GET /v1/metrics", self._handle_metrics
        if path == "/v1/graphs" and method == "POST":
            return "POST /v1/graphs", self._handle_register
        if path.startswith("/v1/graphs/") and method == "DELETE":
            return "DELETE /v1/graphs/{name}", self._handle_release
        if path == "/v1/sessions" and method == "POST":
            return "POST /v1/sessions", self._handle_session_create
        if path == "/v1/sessions" and method == "GET":
            return "GET /v1/sessions", self._handle_session_list
        if path.startswith("/v1/sessions/"):
            rest = path[len("/v1/sessions/"):]
            sid, _, action = rest.partition("/")
            if sid:
                if not action and method == "GET":
                    return "GET /v1/sessions/{id}", self._handle_session_info
                if not action and method == "DELETE":
                    return "DELETE /v1/sessions/{id}", self._handle_session_close
                if action == "mutate" and method == "POST":
                    return (
                        "POST /v1/sessions/{id}/mutate",
                        self._handle_session_mutate,
                    )
                if action == "result" and method == "GET":
                    return (
                        "GET /v1/sessions/{id}/result",
                        self._handle_session_result,
                    )
        return f"{method} {path}", None

    def _record(self, route: str, status: int, latency: float) -> None:
        rec = self._routes.get(route)
        if rec is None:
            rec = self._routes[route] = {
                "requests": 0, "errors": 0,
                "latencies": deque(maxlen=512), "statuses": {},
            }
        rec["requests"] += 1
        if status >= 400:
            rec["errors"] += 1
        rec["statuses"][str(status)] = rec["statuses"].get(str(status), 0) + 1
        rec["latencies"].append(latency)

    def _retry_after(self) -> int:
        """Retry-After seconds for a 429, derived from the observed p95."""
        rec = self._routes.get("POST /v1/solve")
        lat = list(rec["latencies"]) if rec else []
        p95 = float(np.percentile(np.asarray(lat), 95)) if lat else 0.0
        return max(
            int(math.ceil(self.config.retry_after_floor_s)),
            int(math.ceil(2.0 * p95)),
        )

    # -- request parsing ---------------------------------------------------

    def _json_body(self, request: _Request) -> Any:
        if not request.body:
            raise _HTTPError(400, "BadRequestError", "empty request body")
        try:
            return json.loads(request.body)
        except (ValueError, UnicodeDecodeError):
            raise _HTTPError(400, "BadRequestError", "body is not valid JSON")

    def _parse_solve(
        self, obj: Any, headers: Dict[str, str]
    ) -> Tuple[SolveRequest, Optional[float]]:
        """Turn one JSON solve object into a SolveRequest + deadline.

        Decoding itself lives in :mod:`repro.service.schema`; this wrapper
        adds the HTTP-only concerns — the ``X-Repro-Timeout-S`` header and
        registered-graph name resolution — and maps schema ``ValueError``
        onto ``400``.
        """
        timeout_override = None
        if "x-repro-timeout-s" in headers:
            try:
                timeout_override = float(headers["x-repro-timeout-s"])
            except ValueError:
                raise _HTTPError(
                    400, "BadRequestError",
                    "X-Repro-Timeout-S must be a number",
                )
        try:
            return wire_schema.decode_solve(
                obj,
                default_timeout_s=self.config.default_timeout_s,
                timeout_override=timeout_override,
                graph_resolver=self._registered_payload,
            )
        except _HTTPError:
            raise
        except ValueError as exc:
            raise _HTTPError(400, "BadRequestError", str(exc))

    def _registered_payload(self, name: str, problem: str):
        """Graph-name resolver handed to the schema decoder."""
        with self._graphs_lock:
            record = self._graphs.get(name)
        if record is None:
            raise _HTTPError(
                404, "UnknownGraphError",
                f"no registered graph named {name!r}",
            )
        if problem == "mis":
            return record.graph, record.ranks
        return record.edges, None

    def _build_graph(self, obj: Dict[str, Any]):
        try:
            return wire_schema.build_inline_graph(obj)
        except ValueError as exc:
            raise _HTTPError(400, "BadRequestError", str(exc))

    # -- solve execution ---------------------------------------------------

    async def _solve_one(
        self, request: SolveRequest, timeout_s: Optional[float]
    ) -> Tuple[Any, str, Optional[str]]:
        """Bridge one cache-aware solve to the executor, deadline-bounded.

        The socket-side wait is the request deadline plus the service
        grace plus ``deadline_slack_s``; past that the response is a
        504 even if the worker-kill path has not reported back yet —
        the abandoned executor call finishes (and is discarded) in the
        background, so the client never holds a silent socket.
        """
        loop = asyncio.get_running_loop()
        allowance = (
            None if timeout_s is None
            else timeout_s
            + self.service.config.deadline_grace
            + self.config.deadline_slack_s
        )
        call = functools.partial(
            self.service.solve_cached, request, timeout=allowance,
            return_key=True,
        )
        future = loop.run_in_executor(self._executor, call)
        if allowance is None:
            return await future
        try:
            return await asyncio.wait_for(asyncio.shield(future), allowance)
        except (asyncio.TimeoutError, TimeoutError):
            future.add_done_callback(lambda f: f.exception())
            raise DeadlineExceededError(
                f"request exceeded its {timeout_s}s deadline "
                f"(gateway allowance {allowance:.3f}s)"
            )

    @staticmethod
    def _result_body(request: SolveRequest, result: Any) -> Dict[str, Any]:
        """Deterministic response body — only fields that are a pure
        function of (graph, π, method, knobs), so cold, warm-hit, and
        stale-degraded responses for one content address are
        byte-identical.  Run-varying details (worker id, wall time,
        attempts) stay out; the cache disposition rides in headers.
        The encoding itself is owned by :mod:`repro.service.schema` so
        the CLI batch output matches field-for-field."""
        return wire_schema.encode_result(request, result)

    def _encoded_body(
        self, key: Optional[str], request: SolveRequest, result: Any
    ) -> bytes:
        """Serialized response body, reused across requests for one
        content address.  A cached entry is byte-identical to a fresh
        encoding by construction (the body holds only deterministic
        fields), so hit/stale responses skip both ``tolist`` and
        ``json.dumps`` — the dominant cost of a warm hit at paper
        scales.  Uncacheable requests (``key is None``) encode fresh."""
        if key is not None:
            cached = self._body_cache.get(key)
            if cached is not None:
                self._body_cache.move_to_end(key)
                self._body_cache_hits += 1
                return cached
        payload = json.dumps(
            self._result_body(request, result),
            separators=(",", ":"), sort_keys=True,
        ).encode()
        if key is not None:
            while len(self._body_cache) >= self._body_cache_max:
                self._body_cache.popitem(last=False)
            self._body_cache[key] = payload
        return payload

    async def _handle_solve(self, request: _Request):
        solve_req, timeout_s = self._parse_solve(
            self._json_body(request), request.headers
        )
        result, source, key = await self._solve_one(solve_req, timeout_s)
        extra = {"X-Repro-Cache": source}
        if source == "stale":
            self._stale_served += 1
            extra["X-Repro-Degraded"] = "stale"
        return 200, self._encoded_body(key, solve_req, result), extra

    async def _handle_batch(self, request: _Request):
        obj = self._json_body(request)
        if not isinstance(obj, dict) or not isinstance(obj.get("requests"), list):
            raise _HTTPError(
                400, "BadRequestError", "batch body must be {'requests': […]}"
            )
        items = obj["requests"]

        async def one(item: Any) -> Dict[str, Any]:
            try:
                solve_req, timeout_s = self._parse_solve(item, request.headers)
                result, source, _ = await self._solve_one(solve_req, timeout_s)
            except _HTTPError as exc:
                return {
                    "ok": False, "http_status": exc.status,
                    "error": exc.error, "message": exc.message,
                }
            except Exception as exc:  # noqa: BLE001 — taxonomy boundary
                status = _status_for(exc)
                if status is None:
                    self._untyped_errors += 1
                    status = 500
                if status == 429:
                    self._shed += 1
                return {
                    "ok": False, "http_status": status,
                    "error": type(exc).__name__, "message": str(exc),
                }
            if source == "stale":
                self._stale_served += 1
            body = self._result_body(solve_req, result)
            body.update({"ok": True, "cache": source})
            return body

        results = await asyncio.gather(*(one(item) for item in items))
        status = 200 if all(r.get("ok") for r in results) else 207
        return status, {"results": list(results)}, {}

    async def _handle_health(self, request: _Request):
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self._executor,
            functools.partial(self.service.health, include_segments=True),
        )
        probe = self.probe()
        status_word = report.status
        reasons = list(report.reasons)
        if self._draining:
            status_word = "critical" if status_word == "critical" else "degraded"
            reasons.append("gateway is draining; new connections are refused")
        if self._wedge_events and self._last_wedge_age is not None:
            if status_word == "ok":
                status_word = "degraded"
            reasons.append(
                f"gateway event loop stalled {self._wedge_events} time(s) "
                f"(last heartbeat gap {self._last_wedge_age:.3f}s)"
            )
        http_status = {"ok": 200, "degraded": 207}.get(status_word, 503)
        body = {
            "status": status_word,
            "reasons": reasons,
            "gateway": probe,
            "service": report.as_dict(),
        }
        return http_status, body, {}

    async def _handle_metrics(self, request: _Request):
        endpoints: Dict[str, Any] = {}
        for route, rec in sorted(self._routes.items()):
            lat = np.asarray(rec["latencies"], dtype=np.float64)
            endpoints[route] = {
                "requests": rec["requests"],
                "errors": rec["errors"],
                "statuses": dict(rec["statuses"]),
                "latency_p50": float(np.percentile(lat, 50)) if lat.size else 0.0,
                "latency_p95": float(np.percentile(lat, 95)) if lat.size else 0.0,
            }
        stats = self.service.stats()
        with self._graphs_lock:
            graphs = sorted(self._graphs)
        body = {
            "endpoints": endpoints,
            "gateway": {
                **self.probe(),
                "uptime_s": (
                    0.0 if self._started_at is None
                    else round(time.monotonic() - self._started_at, 3)
                ),
                "connections_rejected": self._conns_rejected,
                "shed": self._shed,
                "stale_served": self._stale_served,
                "encoded_cache_entries": len(self._body_cache),
                "encoded_cache_hits": self._body_cache_hits,
                "untyped_errors": self._untyped_errors,
                "graphs": graphs,
            },
            "sessions": self._session_counters(),
            "service": stats.as_dict(),
        }
        return 200, body, {}

    def _session_counters(self) -> Dict[str, int]:
        """Session + durability counters for ``/v1/metrics``.

        Reads the service's ``_session_manager`` attribute directly so a
        metrics scrape never *creates* the manager as a side effect.
        """
        counters = {
            "live_sessions": 0,
            "mutations_applied": 0,
            "idempotent_replays": 0,
            "version_conflicts": 0,
            "quarantined_snapshots": 0,
        }
        manager = getattr(self.service, "_session_manager", None)
        if manager is not None:
            counters.update(manager.counters())
            store = getattr(manager, "_store", None)
            if store is not None:
                counters["quarantined_snapshots"] = len(store.corrupt_files())
        return counters

    async def _handle_register(self, request: _Request):
        obj = self._json_body(request)
        if not isinstance(obj, dict) or not isinstance(obj.get("name"), str):
            raise _HTTPError(
                400, "BadRequestError",
                "registration body must be {'name': …, 'n': …, 'edges': […]}",
            )
        name = obj["name"]
        ranks = obj.get("ranks")
        if ranks is not None:
            try:
                ranks = np.asarray(ranks)
            except (TypeError, ValueError):
                raise _HTTPError(
                    400, "BadRequestError", "ranks must be an array of numbers"
                )
        graph = self._build_graph(obj)
        try:
            record = self.add_graph(name, graph, ranks)
        except KeyError:
            raise _HTTPError(
                409, "GraphExistsError",
                f"graph {name!r} is already registered",
            )
        except ValueError as exc:
            raise _HTTPError(400, "BadRequestError", str(exc))
        body = {
            "name": record.name,
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "segment": record.segment,
            "fingerprint": record.fingerprint,
            "warmed": record.warmed,
        }
        return 200, body, {}

    async def _handle_release(self, request: _Request):
        name = request.path.split("?", 1)[0][len("/v1/graphs/"):]
        with self._graphs_lock:
            record = self._graphs.pop(name, None)
        if record is None:
            raise _HTTPError(
                404, "UnknownGraphError", f"no registered graph named {name!r}"
            )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._executor, self._release_record, record
        )
        return 200, {"released": name}, {}

    # -- stateful sessions -------------------------------------------------

    def _session_id_from(self, request: _Request) -> str:
        rest = request.path.split("?", 1)[0][len("/v1/sessions/"):]
        return rest.partition("/")[0]

    def _session_timeout(
        self, obj: Any, headers: Dict[str, str]
    ) -> Optional[float]:
        """Deadline for a session call: body > header > gateway default."""
        timeout_s = obj.get("timeout_s") if isinstance(obj, dict) else None
        if timeout_s is None and "x-repro-timeout-s" in headers:
            try:
                timeout_s = float(headers["x-repro-timeout-s"])
            except ValueError:
                raise _HTTPError(
                    400, "BadRequestError",
                    "X-Repro-Timeout-S must be a number",
                )
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        return timeout_s

    async def _session_call(self, call, timeout_s: Optional[float]):
        """Bridge one blocking session call to the executor, deadline-bounded.

        Same never-a-hung-socket contract as :meth:`_solve_one`: past the
        deadline plus grace plus ``deadline_slack_s`` the response is a
        504 even if the worker-kill path has not reported back yet.
        """
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, call)
        if timeout_s is None:
            return await future
        allowance = (
            timeout_s
            + self.service.config.deadline_grace
            + self.config.deadline_slack_s
        )
        try:
            return await asyncio.wait_for(asyncio.shield(future), allowance)
        except (asyncio.TimeoutError, TimeoutError):
            future.add_done_callback(lambda f: f.exception())
            raise DeadlineExceededError(
                f"session call exceeded its {timeout_s}s deadline "
                f"(gateway allowance {allowance:.3f}s)"
            )

    async def _handle_session_create(self, request: _Request):
        obj = self._json_body(request)
        if not isinstance(obj, dict):
            raise _HTTPError(
                400, "BadRequestError", "session body must be a JSON object"
            )
        unknown = set(obj) - {
            "problem", "graph", "ranks", "seed", "guards",
            "session_id", "timeout_s", "options",
        }
        if unknown:
            raise _HTTPError(
                400, "BadRequestError",
                f"unknown fields: {', '.join(sorted(unknown))}",
            )
        problem = obj.get("problem", "mis")
        if problem not in ("mis", "matching", "mm"):
            raise _HTTPError(
                400, "BadRequestError",
                f"problem must be 'mis' or 'matching', got {problem!r}",
            )
        if problem == "mm":
            problem = "matching"
        graph = obj.get("graph")
        default_ranks = None
        if isinstance(graph, str):
            payload, default_ranks = self._registered_payload(graph, problem)
        elif isinstance(graph, dict):
            built = self._build_graph(graph)
            payload = built if problem == "mis" else built.edge_list()
        else:
            raise _HTTPError(
                400, "BadRequestError",
                "graph must be a registered name or {'n': …, 'edges': […]}",
            )
        options = None
        if obj.get("options") is not None:
            # Parsed before the default-ranks seed probe below so a
            # malformed options value (non-dict, unknown fields) is a
            # 400, not an AttributeError-turned-500.
            try:
                options = SolveOptions.from_wire(obj["options"])
            except EngineError as exc:
                raise _HTTPError(400, "BadRequestError", str(exc))
        ranks = obj.get("ranks")
        if ranks is not None:
            try:
                ranks = np.asarray(ranks)
            except (TypeError, ValueError):
                raise _HTTPError(
                    400, "BadRequestError", "ranks must be an array of numbers"
                )
        elif problem == "mis" and obj.get("seed") is None:
            # Same default as /v1/solve: a registered graph's pi orders
            # the session unless the request pins ranks or a seed.
            if options is None or options.seed is None:
                ranks = default_ranks
        timeout_s = self._session_timeout(obj, request.headers)
        info = await self._session_call(
            functools.partial(
                self.service.create_session, problem, payload, ranks,
                seed=obj.get("seed"), guards=obj.get("guards"),
                session_id=obj.get("session_id"), timeout_s=timeout_s,
                options=options,
            ),
            timeout_s,
        )
        return 200, info.as_dict(), {}

    async def _handle_session_mutate(self, request: _Request):
        sid = self._session_id_from(request)
        obj = self._json_body(request)
        header_key = request.headers.get("x-repro-idempotency-key")
        try:
            decoded = wire_schema.decode_mutate(
                obj, header_mutation_id=header_key
            )
        except ValueError as exc:
            raise _HTTPError(400, "BadRequestError", str(exc))
        timeout_s = self._session_timeout(obj, request.headers)
        stats = await self._session_call(
            functools.partial(
                self.service.mutate_session, sid,
                decoded["insertions"], decoded["deletions"],
                timeout_s=timeout_s,
                mutation_id=decoded["mutation_id"],
                if_version=decoded["if_version"],
            ),
            timeout_s,
        )
        headers = {}
        if stats.get("idempotent_replay"):
            # Lets a retrying client (and the chaos harness) distinguish
            # a replayed recorded outcome from a fresh application.
            headers["X-Repro-Idempotent-Replay"] = "1"
        return 200, dict(stats, session_id=sid), headers

    async def _handle_session_result(self, request: _Request):
        sid = self._session_id_from(request)
        # problem is immutable for a session's lifetime; the version is
        # read under the record lock *with* the result so a concurrent
        # mutation cannot pair this payload with a later version.
        info = self.service.session_info(sid)
        result, version = await self._session_call(
            functools.partial(
                self.service.session_result, sid, with_version=True,
            ),
            self._session_timeout(None, request.headers),
        )
        body = wire_schema.encode_result(info.problem, result)
        body.update(session_id=sid, version=version)
        return 200, body, {}

    async def _handle_session_info(self, request: _Request):
        sid = self._session_id_from(request)
        return 200, self.service.session_info(sid).as_dict(), {}

    async def _handle_session_list(self, request: _Request):
        infos = self.service.list_sessions()
        return 200, {"sessions": [i.as_dict() for i in infos]}, {}

    async def _handle_session_close(self, request: _Request):
        sid = self._session_id_from(request)
        info = self.service.close_session(sid)
        return 200, dict(info.as_dict(), closed=True), {}

    # -- response writing --------------------------------------------------

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Any,
        extra: Optional[Dict[str, str]] = None,
        *,
        close: bool = False,
    ) -> None:
        payload = (
            body if isinstance(body, (bytes, bytearray))
            else json.dumps(body, separators=(",", ":"), sort_keys=True).encode()
        )
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
            "Connection": "close" if close else "keep-alive",
        }
        if extra:
            headers.update(extra)
        head = "".join(
            [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"]
            + [f"{k}: {v}\r\n" for k, v in headers.items()]
            + ["\r\n"]
        )
        try:
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    @staticmethod
    async def _close(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def request_json(
    address: Tuple[str, int],
    method: str,
    path: str,
    body: Any = None,
    *,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 30.0,
) -> Tuple[int, Dict[str, str], Any]:
    """Tiny blocking JSON client: ``(status, headers, parsed body)``.

    The in-repo consumer for tests, chaos scenarios, and the stress and
    bench scripts — one shared client so every caller exercises the
    same wire path (stdlib ``http.client``, no dependencies).
    """
    import http.client

    conn = http.client.HTTPConnection(address[0], address[1], timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body).encode()
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw else None
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            parsed,
        )
    finally:
        conn.close()
