"""Service configuration and the request record.

:class:`ServiceConfig` is the one knob surface for
:class:`~repro.service.SolverService`: pool sizing, admission control,
retry/backoff policy, circuit-breaker tuning, deadline enforcement, and
the seeded chaos hooks that make the service itself testable under
fault storms.  :class:`SolveRequest` describes one unit of work — a
solver run (``problem="mis"``/``"matching"``) or a generic
crash-isolated call (``problem="call"``).

Everything random in the service (backoff jitter, chaos draws) is
derived from seeds in the config via per-request, per-attempt
``np.random.default_rng((seed, request_id, attempt))`` streams, so a
chaos finding replays exactly regardless of completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.robustness.faults import KERNEL_FAULTS

__all__ = ["ServiceConfig", "SolveRequest"]

_START_METHODS = ("fork", "spawn", "forkserver")
_PROBLEMS = ("mis", "matching", "mm", "call")


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for a :class:`~repro.service.SolverService`.

    Parameters
    ----------
    workers:
        Subprocess pool size.
    max_queue:
        Bound on queued (not yet dispatched) requests; a full queue sheds
        load by raising :class:`~repro.errors.QueueFullError` at submit.
    start_method:
        Multiprocessing start method (``fork``/``spawn``/``forkserver``).
    default_method:
        Engine used when a request does not name one.  The default is the
        fastest member of the degradation chain (``rootset-vec``).
    default_guards:
        Guard mode handed to workers when the request does not set one.
    degrade:
        Route failed/broken engines down the registry's
        ``fallback_chain()``; turning this off pins every retry to the
        requested engine.
    max_retries:
        Additional attempts after the first, per request, across crash
        and engine failures.
    backoff_base, backoff_factor, backoff_max, backoff_jitter:
        Exponential backoff between attempts: attempt *k* (1-based retry)
        sleeps ``min(backoff_max, backoff_base * backoff_factor**(k-1))``
        scaled by a uniform ``1 ± backoff_jitter`` drawn from the seeded
        per-request stream.
    retry_seed, chaos_seed:
        Seeds for the jitter and chaos streams.
    breaker_threshold, breaker_reset_seconds:
        Per-engine circuit breaker tuning (see
        :class:`~repro.service.breaker.CircuitBreaker`).
    deadline_grace:
        Extra parent-side seconds past a request's deadline before the
        worker is presumed hung and killed.
    hang_timeout:
        Kill-and-retry bound for requests *without* deadlines; ``None``
        disables it.
    kill_probability, kill_point:
        Chaos: probability that an attempt's worker is hard-killed
        (``os._exit``), and where (``"pre"``/``"post"`` compute; ``None``
        picks per-attempt from the seeded stream).
    fault_probability, fault_kinds:
        Chaos: probability that a seeded kernel
        :class:`~repro.robustness.FaultSpec` is armed inside the worker
        for the attempt, and the kinds drawn from.
    worker_sys_path:
        Extra ``sys.path`` entries prepended in workers (lets ``"call"``
        jobs import script modules).
    tick:
        Scheduler poll interval in seconds (latency floor for pickups).
    latency_window:
        Completed-request window for the p50/p95 stats.
    backpressure:
        Enable the AIMD adaptive admission limit
        (:class:`~repro.resilience.backpressure.AdaptiveLimiter`): on top
        of the fixed ``max_queue`` bound, outstanding work beyond the
        adaptive limit is shed, and the limit shrinks on overload signals
        (queue-full sheds, deadline failures, completions slower than
        ``bp_latency_target_s``) and grows again on healthy completions.
    bp_initial_limit:
        Starting adaptive limit (default ``2 * workers``).
    bp_min_limit:
        Floor the adaptive limit never sheds below.
    bp_latency_target_s:
        Optional latency SLO; a completion slower than this counts as an
        overload signal.  ``None`` disables latency-based shedding.
    bp_decrease_factor, bp_cooldown_s:
        Multiplicative-decrease factor and the minimum spacing between
        applied decreases.
    hedge_delay_s:
        Enable hedged requests: when a solver request has been in flight
        this long and an idle worker is available, a duplicate attempt is
        dispatched and the first reply wins (the loser is dropped).  Only
        idempotent solver problems hedge — never ``"call"``.  ``None``
        (the default) disables hedging.
    cache_entries:
        Size of the content-addressed result cache
        (:class:`~repro.service.cache.ResultCache`) consulted by
        :meth:`~repro.service.SolverService.solve_cached`; ``0`` (the
        default) disables caching entirely.
    cache_ttl_s:
        Freshness window for cached results; ``None`` never expires.
        Expired entries remain eligible for degraded serve-stale reads.
    reap_on_start:
        Run one :func:`~repro.resilience.reaper.reap_orphans` sweep when
        the service starts, so segments leaked by previously killed
        processes are recovered before new work begins.
    supervise_interval_s:
        When set, :meth:`~repro.service.SolverService.start` launches a
        :class:`~repro.resilience.supervisor.Supervisor` thread probing
        health on this period; ``None`` (the default) runs unsupervised.
    reap_interval_s:
        Minimum spacing between the supervisor's reap sweeps.
    session_dir:
        Directory for durable session snapshots
        (:class:`~repro.dynamic.store.SnapshotStore`).  When set, every
        committed session version is persisted atomically and sessions
        survive full service restarts via
        :meth:`~repro.service.SolverService.restore_session`; ``None``
        (the default) keeps session state in memory only.
    """

    workers: int = 2
    max_queue: int = 64
    start_method: str = "fork"
    default_method: str = "rootset-vec"
    default_guards: Optional[str] = None
    degrade: bool = True
    max_retries: int = 2
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 0.5
    backoff_jitter: float = 0.25
    retry_seed: int = 0
    breaker_threshold: int = 3
    breaker_reset_seconds: float = 5.0
    deadline_grace: float = 0.5
    hang_timeout: Optional[float] = None
    kill_probability: float = 0.0
    kill_point: Optional[str] = None
    fault_probability: float = 0.0
    fault_kinds: Tuple[str, ...] = tuple(KERNEL_FAULTS)
    chaos_seed: int = 0
    worker_sys_path: Tuple[str, ...] = ()
    tick: float = 0.02
    latency_window: int = 512
    backpressure: bool = False
    bp_initial_limit: Optional[int] = None
    bp_min_limit: int = 1
    bp_latency_target_s: Optional[float] = None
    bp_decrease_factor: float = 0.5
    bp_cooldown_s: float = 0.25
    hedge_delay_s: Optional[float] = None
    cache_entries: int = 0
    cache_ttl_s: Optional[float] = None
    reap_on_start: bool = True
    supervise_interval_s: Optional[float] = None
    reap_interval_s: float = 60.0
    session_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.start_method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS}, "
                f"got {self.start_method!r}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        for name in ("backoff_base", "backoff_factor", "backoff_max", "tick"):
            if not getattr(self, name) > 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1), got {self.backoff_jitter}"
            )
        for name in ("kill_probability", "fault_probability"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.kill_point not in (None, "pre", "post"):
            raise ValueError(
                f"kill_point must be None, 'pre' or 'post', got {self.kill_point!r}"
            )
        for kind in self.fault_kinds:
            if kind not in KERNEL_FAULTS:
                raise ValueError(
                    f"fault_kinds may only contain kernel faults "
                    f"{tuple(KERNEL_FAULTS)}, got {kind!r}"
                )
        if not self.deadline_grace >= 0:
            raise ValueError(
                f"deadline_grace must be >= 0, got {self.deadline_grace}"
            )
        if self.hang_timeout is not None and not self.hang_timeout > 0:
            raise ValueError(
                f"hang_timeout must be positive, got {self.hang_timeout}"
            )
        if self.bp_min_limit < 1:
            raise ValueError(
                f"bp_min_limit must be >= 1, got {self.bp_min_limit}"
            )
        if self.bp_initial_limit is not None and self.bp_initial_limit < 1:
            raise ValueError(
                f"bp_initial_limit must be >= 1, got {self.bp_initial_limit}"
            )
        if not 0.0 < self.bp_decrease_factor < 1.0:
            raise ValueError(
                f"bp_decrease_factor must be in (0, 1), "
                f"got {self.bp_decrease_factor}"
            )
        if self.bp_cooldown_s < 0:
            raise ValueError(
                f"bp_cooldown_s must be >= 0, got {self.bp_cooldown_s}"
            )
        if (
            self.bp_latency_target_s is not None
            and not self.bp_latency_target_s > 0
        ):
            raise ValueError(
                f"bp_latency_target_s must be positive, "
                f"got {self.bp_latency_target_s}"
            )
        if self.hedge_delay_s is not None and not self.hedge_delay_s >= 0:
            raise ValueError(
                f"hedge_delay_s must be >= 0, got {self.hedge_delay_s}"
            )
        if self.cache_entries < 0:
            raise ValueError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
        if self.cache_ttl_s is not None and not self.cache_ttl_s > 0:
            raise ValueError(
                f"cache_ttl_s must be positive, got {self.cache_ttl_s}"
            )
        if (
            self.supervise_interval_s is not None
            and not self.supervise_interval_s > 0
        ):
            raise ValueError(
                f"supervise_interval_s must be positive, "
                f"got {self.supervise_interval_s}"
            )
        if self.reap_interval_s < 0:
            raise ValueError(
                f"reap_interval_s must be >= 0, got {self.reap_interval_s}"
            )

    @property
    def chaos_enabled(self) -> bool:
        """Whether any chaos knob is armed."""
        return self.kill_probability > 0.0 or self.fault_probability > 0.0


@dataclass
class SolveRequest:
    """One unit of work for the service.

    Parameters
    ----------
    problem:
        ``"mis"``, ``"matching"`` (alias ``"mm"``), or ``"call"``.
    payload:
        The graph (:class:`~repro.graphs.csr.CSRGraph` or
        :class:`~repro.graphs.csr.EdgeList`) for solver problems; for
        ``"call"`` a dict ``{"module", "func"[, "args", "kwargs"]}``.
    ranks:
        Optional priority array; workers draw from ``options["seed"]``
        when omitted, exactly like the front doors.
    method:
        Engine name (default: the config's ``default_method``); must be
        registered for the problem.
    guards:
        Guard mode override (default: config's ``default_guards``).
    timeout_seconds:
        Wall-clock deadline measured from submission.  Propagated into
        the worker as ``Budget(max_seconds=remaining)`` and enforced
        parent-side with the config's ``deadline_grace``.
    budget_steps:
        Synchronous-step allowance propagated as ``Budget(max_steps=…)``.
    trace_path:
        Per-request JSONL trace written by the worker via
        :class:`~repro.observability.JSONLSink`.
    options:
        Extra engine keywords forwarded to the front door
        (``seed``, ``prefix_size``, ``prefix_frac``, …), or a
        :class:`~repro.core.options.SolveOptions` record — the unified
        front-door options object.  A ``SolveOptions`` is normalized in
        ``__post_init__``: its ``method``/``guards`` lift into the
        request fields (conflicting explicit values raise
        ``ValueError``), the remaining wire-safe knobs become the
        options dict, and local-only knobs (``budget``/``tracer``/
        ``machine``) are rejected because they cannot cross the worker
        pipe — use ``timeout_seconds``/``budget_steps``/``trace_path``.
    """

    problem: str
    payload: Any
    ranks: Any = None
    method: Optional[str] = None
    guards: Optional[str] = None
    timeout_seconds: Optional[float] = None
    budget_steps: Optional[int] = None
    trace_path: Optional[str] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.core.options import SolveOptions

        if isinstance(self.options, SolveOptions):
            opts = self.options
            wire = opts.to_wire()  # rejects budget/tracer/machine
            wire.pop("method", None)
            wire.pop("guards", None)
            # Mirror to_wire's non-default filtering: a SolveOptions left
            # at the default method expresses no choice, so it neither
            # conflicts with an explicit request method nor overrides the
            # service's default_method.
            default_method = type(opts).__dataclass_fields__["method"].default
            if opts.method != default_method:
                if self.method is None:
                    self.method = opts.method
                elif self.method != opts.method:
                    raise ValueError(
                        f"method set to {self.method!r} on the request but "
                        f"{opts.method!r} in options"
                    )
            if opts.guards is not None:
                if self.guards is None:
                    self.guards = opts.guards
                elif self.guards != opts.guards:
                    raise ValueError(
                        f"guards set to {self.guards!r} on the request but "
                        f"{opts.guards!r} in options"
                    )
            self.options = wire
        elif self.options:
            # Plain-dict options (the wire form) get the same lifting, so
            # the worker never sees method/guards both as job fields and
            # inside **options.
            opts = dict(self.options)
            o_method = opts.pop("method", None)
            o_guards = opts.pop("guards", None)
            if o_method is not None:
                if self.method is None:
                    self.method = o_method
                elif self.method != o_method:
                    raise ValueError(
                        f"method set to {self.method!r} on the request but "
                        f"{o_method!r} in options"
                    )
            if o_guards is not None:
                if self.guards is None:
                    self.guards = o_guards
                elif self.guards != o_guards:
                    raise ValueError(
                        f"guards set to {self.guards!r} on the request but "
                        f"{o_guards!r} in options"
                    )
            self.options = opts
        if self.problem not in _PROBLEMS:
            raise ValueError(
                f"problem must be one of {_PROBLEMS}, got {self.problem!r}"
            )
        if self.problem == "mm":
            self.problem = "matching"
        if self.timeout_seconds is not None and not self.timeout_seconds > 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.budget_steps is not None and not self.budget_steps > 0:
            raise ValueError(
                f"budget_steps must be positive, got {self.budget_steps}"
            )
        if self.problem == "call":
            if not (
                isinstance(self.payload, dict)
                and "module" in self.payload
                and "func" in self.payload
            ):
                raise ValueError(
                    "a 'call' request needs payload={'module', 'func'[, 'kwargs']}"
                )
