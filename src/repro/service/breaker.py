"""Per-engine circuit breaker: closed → open → half-open → closed.

One :class:`CircuitBreaker` guards one ``(problem, method)`` pair in the
service.  Consecutive failures (worker deaths or engine errors
attributed to that engine) trip the breaker **open**; while open, the
scheduler routes requests to the next engine in the registry's
degradation chain instead.  After ``reset_seconds`` the breaker admits
exactly one probe (**half-open**): a success closes it, a failure
re-opens it for another full window.

The clock is injectable so tests can march a breaker through its state
machine deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe.

    Parameters
    ----------
    threshold:
        Consecutive failures that trip the breaker open.
    reset_seconds:
        Open-state cool-down before a half-open probe is admitted.
    clock:
        Injectable monotonic time source.

    Examples
    --------
    >>> b = CircuitBreaker(threshold=2, reset_seconds=10, clock=lambda: 0.0)
    >>> b.record_failure(); b.record_failure()
    False
    True
    >>> b.state
    'open'
    """

    def __init__(
        self,
        threshold: int = 3,
        reset_seconds: float = 5.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if not reset_seconds > 0:
            raise ValueError(f"reset_seconds must be positive, got {reset_seconds}")
        self.threshold = threshold
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float = 0.0
        self._open = False
        self._probing = False
        self.trips = 0  #: total times the breaker has tripped open

    # -- state -------------------------------------------------------------

    def _cooled(self) -> bool:
        return self._clock() - self._opened_at >= self.reset_seconds

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` right now."""
        with self._lock:
            if not self._open:
                return "closed"
            return "half-open" if self._cooled() else "open"

    def allow(self) -> bool:
        """Whether a request may be routed through this engine now.

        In half-open state only a single probe is admitted at a time;
        callers that got ``True`` must report the outcome via
        :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            if not self._open:
                return True
            if not self._cooled() or self._probing:
                return False
            self._probing = True
            return True

    # -- outcomes ----------------------------------------------------------

    def record_success(self) -> None:
        """A routed request succeeded: close and reset the breaker."""
        with self._lock:
            self._failures = 0
            self._open = False
            self._probing = False

    def record_failure(self) -> bool:
        """A routed request failed; returns True when this trips the breaker."""
        with self._lock:
            self._failures += 1
            if self._probing or self._failures >= self.threshold:
                tripped = (not self._open) or self._probing
                self._open = True
                self._probing = False
                self._opened_at = self._clock()
                if tripped:
                    self.trips += 1
                return tripped
            return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitBreaker(state={self.state!r}, failures={self._failures}, "
            f"trips={self.trips})"
        )
