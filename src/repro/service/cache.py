"""Content-addressed result cache for the solver service.

The paper's determinism guarantee — greedy MIS/MM output is a pure
function of ``(graph, π)`` plus the engine knobs that pick the schedule
— is what makes caching *safe* here: any replica, any retry, any cache
hit returns the bit-identical answer, so a cached entry can stand in for
a fresh solve even while the backend is degraded ("serve stale").

:func:`request_key` derives the address from **content, not identity**:
a sha1 over the graph's structural arrays, a digest of π (or the seed it
will be drawn from), the problem/method pair, and the canonicalized
engine knobs.  The graph digest is recomputed from the live arrays on
every lookup — deliberately.  A shared-memory segment mutated behind the
service's back therefore hashes to a *different* key and can never be
served a stale solution for the bytes it used to hold (the
``cache_poison_guard`` chaos axis attacks exactly this).

:class:`ResultCache` is a thread-safe LRU with optional TTL and a
"stale" escape hatch: :meth:`ResultCache.get` honors the TTL,
:meth:`ResultCache.get_stale` ignores it (used only on degraded paths,
where a deterministic stale answer beats a 503).  Counters (hits,
misses, evictions, expirations, stale serves) feed
:class:`~repro.service.stats.ServiceStats` and the gateway's
``/v1/metrics``.

A request is **uncacheable** when its ordering is not pinned down by
content: no explicit π and no ``seed`` knob means the front door draws
fresh OS entropy, so two executions legitimately differ.
:func:`request_key` returns ``None`` for those and the service simply
solves through.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

__all__ = ["CacheEntry", "ResultCache", "content_digest", "request_key"]


def content_digest(*arrays: np.ndarray) -> str:
    """sha1 over the sizes + bytes of *arrays* (order-sensitive)."""
    h = hashlib.sha1()
    for arr in arrays:
        a = np.ascontiguousarray(arr)
        h.update(np.int64(a.size).tobytes())
        h.update(a.tobytes())
    return h.hexdigest()[:16]


def _payload_digest(payload) -> str:
    """Content hash of a graph payload's structural arrays.

    Always recomputed from the arrays the request would actually solve
    over — for a shared-memory graph these are the live segment views,
    so in-place mutation changes the digest and the poisoned bytes can
    never alias a cached entry.
    """
    # Duck-typed on the two payload shapes so this module needs no
    # graphs import (layering: service → graphs is fine, but the digest
    # must also accept zero-copy views that rebuilt payloads wrap).
    if hasattr(payload, "offsets"):
        return content_digest(payload.offsets, payload.neighbors)
    if hasattr(payload, "u"):
        return content_digest(
            np.int64([payload.num_vertices]), payload.u, payload.v
        )
    raise TypeError(
        f"cannot digest payload of type {type(payload).__name__}"
    )


def request_key(
    problem: str,
    payload,
    ranks,
    method: str,
    guards: Optional[str],
    options: Optional[Dict[str, Any]] = None,
) -> Optional[str]:
    """The content address for one solve, or ``None`` when uncacheable.

    The key binds everything that can change the answer: problem,
    engine, guard mode (guards never change the *answer*, but a guarded
    run can fail where an unguarded one returns — keeping them distinct
    is the conservative choice), the graph bytes, π (or the seed that
    determines it), and the engine knobs.  Knobs that only change *how*
    the identical answer is computed still key separately; a false miss
    costs one solve, a false hit could serve a wrong answer.
    """
    options = options or {}
    if ranks is not None:
        ranks_part = "pi:" + content_digest(np.asarray(ranks))
    elif options.get("seed") is not None:
        ranks_part = f"seed:{options['seed']}"
    else:
        return None  # fresh entropy per call — never cache
    knobs = {k: v for k, v in sorted(options.items()) if k != "seed"}
    knob_part = json.dumps(knobs, sort_keys=True, default=str)
    return "|".join([
        problem,
        method,
        guards or "off",
        _payload_digest(payload),
        ranks_part,
        knob_part,
    ])


class CacheEntry:
    """One cached solution plus its bookkeeping."""

    __slots__ = ("value", "stored_at", "hits")

    def __init__(self, value: Any, stored_at: float) -> None:
        self.value = value
        self.stored_at = stored_at
        self.hits = 0


class ResultCache:
    """Thread-safe content-addressed LRU + TTL cache of solve results.

    Parameters
    ----------
    max_entries:
        LRU bound; inserting past it evicts the least-recently-used
        entry.
    ttl_s:
        Optional freshness window.  :meth:`get` treats entries older
        than this as misses (they stay resident for :meth:`get_stale`
        until LRU pressure evicts them); ``None`` means entries never
        expire.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_entries: int = 128,
        ttl_s: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self.max_entries = int(max_entries)
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.stale_served = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _fresh(self, entry: CacheEntry) -> bool:
        return (
            self.ttl_s is None
            or self._clock() - entry.stored_at <= self.ttl_s
        )

    def get(self, key: Optional[str]) -> Optional[Any]:
        """Fresh lookup: LRU-touches and returns the value, else ``None``.

        An expired entry counts as a miss (and an expiration) but stays
        resident so a degraded path can still :meth:`get_stale` it.
        """
        if key is None:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if not self._fresh(entry):
                self.misses += 1
                self.expirations += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry.value

    def get_stale(self, key: Optional[str]) -> Optional[Any]:
        """Degraded-path lookup: ignores the TTL (determinism makes a
        stale entry identical to a fresh solve for immutable content)."""
        if key is None:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.stale_served += 1
            return entry.value

    def put(self, key: Optional[str], value: Any) -> bool:
        """Insert/refresh one entry; returns whether anything was stored."""
        if key is None:
            return False
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = CacheEntry(value, self._clock())
                return True
            while len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = CacheEntry(value, self._clock())
            return True

    def invalidate(self, key: str) -> bool:
        """Drop one entry (returns whether it existed)."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (counters keep running)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Counters + occupancy, JSON-ready (feeds ``/v1/metrics``)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_s": self.ttl_s,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "stale_served": self.stale_served,
            }

    def keys(self) -> Tuple[str, ...]:
        """Resident keys, LRU-oldest first (tests and warmup audits)."""
        with self._lock:
            return tuple(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResultCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
