"""Operational statistics for the solver service.

:class:`StatsCollector` is the thread-safe mutable side (counters and a
bounded latency window, updated by the scheduler and by ``submit``);
:class:`ServiceStats` is the frozen snapshot handed to callers by
``SolverService.stats()``.  Latency percentiles are computed over the
last ``window`` completed requests, so a long-running service reports
recent behavior rather than an all-time average.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["ServiceStats", "StatsCollector"]


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time snapshot of a running service.

    Gauges (``queue_depth``, ``in_flight``, ``workers_alive``) describe
    the instant of the snapshot; counters are monotone since service
    start; ``latency_p50``/``latency_p95`` are seconds over the recent
    completion window (0.0 until something completes).
    """

    queue_depth: int
    in_flight: int
    workers_alive: int
    workers_configured: int
    submitted: int
    completed: int
    failed: int
    shed: int
    retries: int
    worker_crashes: int
    worker_restarts: int
    deadline_failures: int
    breaker_trips: int
    hedges: int = 0
    hedge_wins: int = 0
    overloads: int = 0
    admission_limit: Optional[int] = None
    breaker_states: Dict[str, str] = field(default_factory=dict)
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_count: int = 0
    cache_enabled: bool = False
    cache_entries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_stale_served: int = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dict (used by the CLI and the stress report)."""
        return {
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "workers_alive": self.workers_alive,
            "workers_configured": self.workers_configured,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "worker_restarts": self.worker_restarts,
            "deadline_failures": self.deadline_failures,
            "breaker_trips": self.breaker_trips,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "overloads": self.overloads,
            "admission_limit": self.admission_limit,
            "breaker_states": dict(self.breaker_states),
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_count": self.latency_count,
            "cache_enabled": self.cache_enabled,
            "cache_entries": self.cache_entries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_stale_served": self.cache_stale_served,
        }

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"queue depth:     {self.queue_depth} "
            f"(in flight {self.in_flight}, shed {self.shed})",
            f"workers:         {self.workers_alive}/{self.workers_configured} alive "
            f"({self.worker_restarts} restarts, {self.worker_crashes} crashes)",
            f"requests:        {self.submitted} submitted, "
            f"{self.completed} completed, {self.failed} failed",
            f"retries:         {self.retries} "
            f"(deadline failures {self.deadline_failures})",
            f"breaker trips:   {self.breaker_trips}",
        ]
        if self.hedges:
            lines.append(
                f"hedges:          {self.hedges} ({self.hedge_wins} won)"
            )
        if self.admission_limit is not None:
            lines.append(
                f"admission limit: {self.admission_limit} "
                f"({self.overloads} overload decreases)"
            )
        if self.cache_enabled:
            lines.append(
                f"result cache:    {self.cache_entries} entries, "
                f"{self.cache_hits} hits / {self.cache_misses} misses "
                f"({self.cache_evictions} evicted, "
                f"{self.cache_stale_served} served stale)"
            )
        open_breakers = {
            k: v for k, v in self.breaker_states.items() if v != "closed"
        }
        if open_breakers:
            lines.append(
                "breakers:        "
                + ", ".join(f"{k}={v}" for k, v in sorted(open_breakers.items()))
            )
        if self.latency_count:
            lines.append(
                f"latency:         p50 {self.latency_p50 * 1e3:.1f} ms, "
                f"p95 {self.latency_p95 * 1e3:.1f} ms "
                f"(window {self.latency_count})"
            )
        return "\n".join(lines)


class StatsCollector:
    """Thread-safe counters + latency window behind ``ServiceStats``.

    Counter names are fixed attributes (a typo'd ``bump`` is an
    ``AttributeError``, not a silently minted counter).
    """

    _COUNTERS = (
        "submitted",
        "completed",
        "failed",
        "shed",
        "retries",
        "worker_crashes",
        "worker_restarts",
        "deadline_failures",
        "breaker_trips",
        "hedges",
        "hedge_wins",
        "overloads",
    )

    def __init__(self, window: int = 512) -> None:
        if window < 1:
            raise ValueError(f"latency window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=window)
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def bump(self, name: str, k: int = 1) -> None:
        """Increment one of the fixed counters by *k*."""
        if name not in self._COUNTERS:
            raise AttributeError(f"unknown service counter {name!r}")
        with self._lock:
            setattr(self, name, getattr(self, name) + k)

    def record_latency(self, seconds: float) -> None:
        """Add one completed-request latency to the window."""
        with self._lock:
            self._latencies.append(float(seconds))

    def snapshot(
        self,
        *,
        queue_depth: int,
        in_flight: int,
        workers_alive: int,
        workers_configured: int,
        breaker_states: Dict[str, str],
        admission_limit: Optional[int] = None,
        cache: Optional[Dict[str, int]] = None,
    ) -> ServiceStats:
        """Freeze the current counters and gauges into a ServiceStats."""
        with self._lock:
            lat = np.asarray(self._latencies, dtype=np.float64)
            p50, p95 = (
                (float(np.percentile(lat, 50)), float(np.percentile(lat, 95)))
                if lat.size
                else (0.0, 0.0)
            )
            return ServiceStats(
                queue_depth=queue_depth,
                in_flight=in_flight,
                workers_alive=workers_alive,
                workers_configured=workers_configured,
                submitted=self.submitted,
                completed=self.completed,
                failed=self.failed,
                shed=self.shed,
                retries=self.retries,
                worker_crashes=self.worker_crashes,
                worker_restarts=self.worker_restarts,
                deadline_failures=self.deadline_failures,
                breaker_trips=self.breaker_trips,
                hedges=self.hedges,
                hedge_wins=self.hedge_wins,
                overloads=self.overloads,
                admission_limit=admission_limit,
                breaker_states=dict(breaker_states),
                latency_p50=p50,
                latency_p95=p95,
                latency_count=lat.size,
                cache_enabled=cache is not None,
                cache_entries=(cache or {}).get("entries", 0),
                cache_hits=(cache or {}).get("hits", 0),
                cache_misses=(cache or {}).get("misses", 0),
                cache_evictions=(cache or {}).get("evictions", 0),
                cache_stale_served=(cache or {}).get("stale_served", 0),
            )
