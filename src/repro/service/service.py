"""The crash-isolated solver service: scheduling, retries, degradation.

:class:`SolverService` turns the library into a resilient batch server:

* a bounded admission queue (:class:`~repro.errors.QueueFullError` when
  full — load shedding instead of unbounded memory growth);
* a pool of subprocess workers (:mod:`repro.service.pool`) — a crash,
  OOM kill, or hang of one request cannot take down the service or
  disturb sibling requests;
* per-request deadlines, propagated into workers as
  ``Budget(max_seconds=remaining)`` and enforced parent-side with a
  grace window (a hung worker is killed and replaced);
* retry with exponential backoff + seeded jitter on worker death and
  transient engine failures;
* a per-engine circuit breaker that trips after repeated failures and
  degrades requests along the registry's
  :func:`~repro.core.engines.fallback_chain` — safe *by construction*,
  because every chain engine returns the bit-identical
  sequential-greedy answer;
* zero-copy graph registration (:meth:`SolverService.register_graph`):
  a registered graph lives in one shared-memory segment
  (:class:`~repro.backends.SharedCSR`), its partition arrays precomputed
  at registration, and requests for it send only the segment name plus a
  content fingerprint — no per-request pickling; unregistered graphs
  fall back to the array-pickling path transparently;
* every attempt recorded in ``result.stats.aux["service"]``, a
  :class:`~repro.service.stats.ServiceStats` snapshot, and graceful
  drain/shutdown (which also unlinks every registered segment);
* optional adaptive backpressure (``backpressure=True``): an AIMD
  limiter sheds outstanding work beyond an adaptive limit that shrinks
  on overload (queue-full sheds, deadline misses, slow completions) and
  recovers on healthy ones;
* optional hedged requests (``hedge_delay_s``): a slow solver attempt
  gets a duplicate on an idle worker and the first reply wins — safe
  because solver requests are idempotent and every chain engine returns
  the same bit-identical answer;
* resilience hooks: an orphaned-segment reap sweep at :meth:`start`
  (``reap_on_start``), an optional background
  :class:`~repro.resilience.supervisor.Supervisor`
  (``supervise_interval_s``), and :meth:`SolverService.health` for a
  cross-layer health report.

The scheduler runs on one background thread; workers are the only other
processes.  All randomness (jitter, chaos draws) comes from per-request
seeded streams, so fault storms replay exactly.
"""

from __future__ import annotations

import itertools
import threading
import time
from multiprocessing import connection as mp_connection
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

import repro.errors as errors_mod
from repro.core import engines as engine_registry
from repro.core.result import MatchingResult, MISResult, RunStats
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    QueueFullError,
    ServiceError,
    WorkerCrashError,
)
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache, request_key
from repro.service.config import ServiceConfig, SolveRequest
from repro.service.pool import WorkerHandle, WorkerPool
from repro.service.stats import ServiceStats, StatsCollector
from repro.service.worker import encode_payload

__all__ = ["ServiceFuture", "SolverService", "serve", "solve_many"]

#: Worker error types that no retry or different engine could fix: the
#: input or configuration itself is bad.  Surfaced immediately.
_NON_RETRYABLE = frozenset({
    "InvalidGraphError",
    "InvalidOrderingError",
    "EngineError",
    "GraphFormatError",
    "TypeError",
})


class ServiceFuture:
    """Handle to one submitted request's eventual result.

    A tiny single-shot future: the scheduler thread resolves it exactly
    once with either a value or an exception.
    """

    __slots__ = ("request_id", "_event", "_value", "_exc")

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id
        self._event = threading.Event()
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    def done(self) -> bool:
        """Whether the request has completed (successfully or not)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the result; raises the request's failure if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not done within {timeout}s"
            )
        if self._exc is not None:
            raise self._exc
        return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """Block for completion; return the failure (None on success)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not done within {timeout}s"
            )
        return self._exc

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._exc = exc
        self._event.set()


class _Ticket:
    """Scheduler-internal record of one in-progress request."""

    __slots__ = (
        "id", "request", "future", "submitted", "deadline",
        "not_before", "retries", "attempts", "failed_methods",
    )

    def __init__(self, ticket_id: int, request: SolveRequest, now: float) -> None:
        self.id = ticket_id
        self.request = request
        self.future = ServiceFuture(ticket_id)
        self.submitted = now
        self.deadline = (
            None if request.timeout_seconds is None
            else now + request.timeout_seconds
        )
        self.not_before = now
        self.retries = 0
        self.attempts: List[Dict[str, Any]] = []
        self.failed_methods: set = set()


def _reconstruct_error(name: str, message: str) -> BaseException:
    """Map a worker-reported error name back onto the errors taxonomy."""
    cls = getattr(errors_mod, name, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        return cls(message)
    return ServiceError(f"{name}: {message}")


class SolverService:
    """A pool-backed, deadline-aware, self-healing batch solver.

    Use as a context manager (``with SolverService(...) as svc``) or call
    :meth:`start` / :meth:`shutdown` explicitly.  See the module
    docstring for the feature inventory and ``docs/robustness.md`` for
    the request lifecycle.

    Examples
    --------
    >>> import repro
    >>> from repro.service import SolverService, SolveRequest
    >>> g = repro.generators.uniform_random_graph(200, 600, seed=0)
    >>> with SolverService(workers=2) as svc:                # doctest: +SKIP
    ...     res = svc.solve(SolveRequest("mis", g, options={"seed": 1}))
    """

    def __init__(self, config: Optional[ServiceConfig] = None, **overrides) -> None:
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServiceConfig or keyword overrides")
        self.config = config
        self._pool = WorkerPool(
            config.workers,
            start_method=config.start_method,
            sys_path=config.worker_sys_path,
        )
        self._stats = StatsCollector(window=config.latency_window)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._queue: List[_Ticket] = []
        self._delayed: List[_Ticket] = []
        self._ids = itertools.count()
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._closed = False
        self._stop = False
        self._supervisor = None
        self._limiter = None
        if config.backpressure:
            from repro.resilience.backpressure import AdaptiveLimiter

            self._limiter = AdaptiveLimiter(
                initial=config.bp_initial_limit or 2 * config.workers,
                min_limit=config.bp_min_limit,
                max_limit=max(config.max_queue, config.workers),
                latency_target_s=config.bp_latency_target_s,
                decrease_factor=config.bp_decrease_factor,
                cooldown_s=config.bp_cooldown_s,
            )
        self.cache: Optional[ResultCache] = None
        if config.cache_entries > 0:
            self.cache = ResultCache(
                config.cache_entries, config.cache_ttl_s
            )
        # id(payload) -> (payload, SharedCSR).  The payload reference is
        # load-bearing: it pins the object so the id key can never be
        # recycled while the registration is live.
        self._shared: Dict[int, tuple] = {}
        self._session_manager = None
        self._session_manager_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SolverService":
        """Spawn the worker pool and the scheduler thread (idempotent).

        With ``reap_on_start`` (the default) one orphaned-segment reap
        sweep runs first, so shared memory leaked by previously killed
        processes is recovered before new segments are created.  With
        ``supervise_interval_s`` set, a background
        :class:`~repro.resilience.supervisor.Supervisor` is started too.
        """
        with self._lock:
            if self._started:
                return self
            if self.config.reap_on_start:
                from repro.resilience.reaper import reap_orphans

                try:
                    reap_orphans(snapshot_dir=self.config.session_dir)
                except OSError:  # pragma: no cover - ledger dir unusable
                    pass
            self._pool.start()
            self._stop = False
            self._closed = False
            self._thread = threading.Thread(
                target=self._run, name="repro-solver-scheduler", daemon=True
            )
            self._started = True
            self._thread.start()
            if self.config.supervise_interval_s is not None:
                from repro.resilience.supervisor import Supervisor

                self._supervisor = Supervisor(
                    self,
                    interval_s=self.config.supervise_interval_s,
                    reap_interval_s=self.config.reap_interval_s,
                ).start()
        return self

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting work; wait for queue + in-flight to empty.

        Returns True when everything completed within *timeout* (None
        waits forever).
        """
        end = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._closed = True
            while self._outstanding() > 0:
                remaining = None if end is None else end - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(timeout=0.05 if remaining is None else min(0.05, remaining))
            return True

    def shutdown(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the service: optionally drain, then kill workers.

        Outstanding requests (when not drained) fail with
        :class:`~repro.errors.ServiceError`.
        """
        if not self._started:
            return
        if self._supervisor is not None:
            self._supervisor.stop()
            self._supervisor = None
        if drain:
            self.drain(timeout=timeout)
        with self._cond:
            self._stop = True
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        leftovers: List[_Ticket] = []
        with self._lock:
            leftovers.extend(self._queue)
            leftovers.extend(self._delayed)
            for w in self._pool.busy():
                if w.job is not None:
                    leftovers.append(w.job)
                    w.job = None
            self._queue.clear()
            self._delayed.clear()
        self._pool.shutdown()
        # Workers are gone; the owner is the last holder of every
        # registered segment, so unlinking here is leak-proof even after
        # worker crashes mid-request.
        for _payload, shared in self._shared.values():
            shared.close()
            shared.unlink()
        self._shared.clear()
        for ticket in leftovers:
            self._finish_error(
                ticket, ServiceError("service shut down before completion"),
                time.monotonic(),
            )
        self._started = False

    # -- shared-memory graph registration ----------------------------------

    def register_graph(self, payload, ranks=None, *, precompute: bool = True):
        """Place *payload* in shared memory; later requests skip pickling.

        Returns the :class:`~repro.backends.SharedCSR` bundle.  Every
        subsequent :class:`~repro.service.SolveRequest` whose ``payload``
        **is** this object (identity) sends only the segment name plus a
        content fingerprint; workers attach once and reuse zero-copy
        views.  With *ranks* given, π ships in the same segment and the
        memoized partition arrays (parent/child split or rank-sorted
        incidence) are precomputed **here, at registration** — attaching
        workers seed their caches from shared memory instead of
        recomputing, so their first solve for ``(payload, ranks)`` runs
        warm.  Requests whose ``ranks`` equal the registered array reuse
        the shared copy without shipping it.

        The service owns the segment: :meth:`release_graph` or
        :meth:`shutdown` unlinks it.  Registering the same object again
        returns the existing bundle.
        """
        from repro.backends.sharedmem import SharedCSR

        with self._lock:
            entry = self._shared.get(id(payload))
            if entry is not None:
                return entry[1]
            shared = SharedCSR.create(payload, ranks, precompute=precompute)
            self._shared[id(payload)] = (payload, shared)
            return shared

    def release_graph(self, payload) -> bool:
        """Unlink the segment registered for *payload* (returns whether found).

        In-flight requests keep working — their workers hold attachments,
        and the kernel frees the memory only when the last mapping closes.
        New requests for the object fall back to pickling.
        """
        with self._lock:
            entry = self._shared.pop(id(payload), None)
        if entry is None:
            return False
        entry[1].close()
        entry[1].unlink()
        return True

    def _shared_for(self, payload):
        entry = self._shared.get(id(payload))
        return None if entry is None else entry[1]

    # -- submission --------------------------------------------------------

    def submit(
        self,
        request: SolveRequest,
        *,
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> ServiceFuture:
        """Enqueue one request; returns its :class:`ServiceFuture`.

        A full queue raises :class:`~repro.errors.QueueFullError` (the
        rejection is counted as shed load) unless ``block=True``, which
        waits for space instead — the backpressure mode ``solve_many``
        uses.  With ``backpressure`` enabled, outstanding work beyond
        the AIMD limiter's current limit is shed the same way; a fixed
        queue-full rejection also counts as an overload signal.
        """
        if not self._started:
            raise ServiceError("service is not started (call start() or use 'with')")
        if request.problem != "call":
            # Fail unknown methods at submission, not inside a worker.
            engine_registry.get_engine(
                request.problem, request.method or self.config.default_method
            )
        end = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise ServiceError("service is draining; submissions closed")
                queue_full = (
                    len(self._queue) + len(self._delayed)
                    >= self.config.max_queue
                )
                over_limit = (
                    not queue_full
                    and self._limiter is not None
                    and self._outstanding() >= self._limiter.limit
                )
                if not queue_full and not over_limit:
                    break
                if not block:
                    self._stats.bump("shed")
                    if queue_full:
                        self._note_overload()
                        raise QueueFullError(
                            f"admission queue full ({self.config.max_queue} "
                            "requests); retry later or raise max_queue"
                        )
                    raise QueueFullError(
                        f"adaptive admission limit reached "
                        f"({self._limiter.limit} outstanding); retry later"
                    )
                remaining = None if end is None else end - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self._stats.bump("shed")
                    raise QueueFullError(
                        f"no queue space within {timeout}s "
                        f"({self.config.max_queue} queued)"
                    )
                self._cond.wait(timeout=0.05 if remaining is None else min(0.05, remaining))
            ticket = _Ticket(next(self._ids), request, time.monotonic())
            self._queue.append(ticket)
            self._stats.bump("submitted")
            self._cond.notify_all()
        return ticket.future

    def solve(self, request: SolveRequest, timeout: Optional[float] = None) -> Any:
        """Submit and wait: returns the result or raises the typed failure."""
        return self.submit(request).result(timeout)

    # -- content-addressed result caching ----------------------------------

    def request_cache_key(self, request: SolveRequest) -> Optional[str]:
        """The content address for *request*, or ``None`` if uncacheable.

        ``None`` when caching is disabled, the request is a ``"call"``
        (not known to be idempotent), or its ordering is unpinned (no π
        and no ``seed`` knob — a fresh solve draws fresh entropy).  The
        graph digest is recomputed from the live arrays, so a mutated
        shared segment can never alias an entry cached for the old bytes.
        """
        if self.cache is None or request.problem == "call":
            return None
        return request_key(
            request.problem,
            request.payload,
            request.ranks,
            request.method or self.config.default_method,
            request.guards if request.guards is not None
            else self.config.default_guards,
            request.options,
        )

    def solve_cached(
        self,
        request: SolveRequest,
        timeout: Optional[float] = None,
        *,
        return_key: bool = False,
    ) -> tuple:
        """Cache-aware solve: returns ``(result, source)``.

        ``source`` is ``"hit"`` (fresh cache entry), ``"miss"`` (solved
        through the pool and stored), ``"stale"`` (backend degraded —
        breaker chain fully open or every worker dead — and a resident
        entry served instead of the failure; determinism makes it
        bit-identical to a fresh solve), or ``"uncached"`` (caching
        disabled or the request is uncacheable).  Failures with no stale
        fallback re-raise the typed error unchanged.

        With ``return_key=True`` the tuple is ``(result, source, key)``
        — the content address is computed exactly once per call, so a
        caller keeping derived state per address (the gateway's
        encoded-response cache) need not hash the payload again.
        """
        key = self.request_cache_key(request)
        if key is None:
            result, source = self.solve(request, timeout), "uncached"
            return (result, source, None) if return_key else (result, source)
        cached = self.cache.get(key)
        if cached is not None:
            return (cached, "hit", key) if return_key else (cached, "hit")
        try:
            result = self.solve(request, timeout)
            source = "miss"
            self.cache.put(key, result)
        except (CircuitOpenError, WorkerCrashError):
            # The backend cannot serve right now.  A resident entry for
            # this exact content is bit-identical to the answer a healthy
            # backend would return, so degrade to it instead of failing.
            stale = self.cache.get_stale(key)
            if stale is None:
                raise
            result, source = stale, "stale"
        return (result, source, key) if return_key else (result, source)

    def warm_cache(self, problem: str, payload, ranks=None, **options) -> int:
        """Pre-populate the cache for one registered graph (startup warmup).

        Solves ``(problem, payload, ranks)`` with the default method and
        stores the result; returns the number of entries added (0 when
        caching is disabled or the content was already resident).
        """
        if self.cache is None:
            return 0
        request = SolveRequest(
            problem, payload, ranks=ranks, options=dict(options)
        )
        key = self.request_cache_key(request)
        if key is None or self.cache.get(key) is not None:
            return 0
        self.cache.put(key, self.solve(request))
        return 1

    def solve_many(
        self,
        requests: Iterable[SolveRequest],
        *,
        return_errors: bool = False,
        timeout: Optional[float] = None,
    ) -> List[Any]:
        """Run a batch through the pool; results come back in input order.

        Submission applies backpressure (waits for queue space) rather
        than shedding.  With ``return_errors=True`` a failed request
        contributes its exception object instead of aborting the batch.
        """
        futures = [self.submit(req, block=True) for req in requests]
        out: List[Any] = []
        for fut in futures:
            try:
                out.append(fut.result(timeout))
            except Exception as exc:  # noqa: BLE001 — caller opted in
                if not return_errors:
                    raise
                out.append(exc)
        return out

    # -- stateful sessions -------------------------------------------------

    @property
    def sessions(self):
        """The service's :class:`~repro.service.sessions.SessionManager`.

        Created lazily; with ``config.session_dir`` set it persists every
        committed version through a
        :class:`~repro.dynamic.store.SnapshotStore`.
        """
        with self._session_manager_lock:
            if self._session_manager is None:
                from repro.service.sessions import SessionManager

                store = None
                if self.config.session_dir is not None:
                    from repro.dynamic.store import SnapshotStore

                    store = SnapshotStore(self.config.session_dir)
                self._session_manager = SessionManager(self, store=store)
            return self._session_manager

    def create_session(self, problem, payload, ranks=None, **kwargs):
        """Start a stateful incremental session (initial solve = v0).

        Mutations replay inside crash-isolated workers from the
        parent-held committed state; see :mod:`repro.service.sessions`.
        """
        return self.sessions.create(problem, payload, ranks, **kwargs)

    def mutate_session(self, session_id, insertions=(), deletions=(), **kwargs):
        """Apply one edge-mutation batch; returns the batch's re-peel stats.

        Accepts the exactly-once keywords: ``mutation_id`` (idempotent
        replay of a recorded outcome for duplicates) and ``if_version``
        (compare-and-swap precondition; raises
        :class:`~repro.errors.VersionConflictError` on mismatch).
        """
        return self.sessions.mutate(session_id, insertions, deletions, **kwargs)

    def session_result(self, session_id, **kwargs):
        """The full MIS/matching result of the committed version.

        ``with_version=True`` returns ``(result, version)`` read
        atomically under the session's record lock.
        """
        return self.sessions.result(session_id, **kwargs)

    def session_info(self, session_id):
        """Version/size/work summary of one live session."""
        return self.sessions.info(session_id)

    def session_snapshot(self, session_id):
        """A portable snapshot of the committed version."""
        return self.sessions.snapshot(session_id)

    def restore_session(self, snapshot=None, **kwargs):
        """Revive a session from a snapshot or the persistent store."""
        return self.sessions.restore(snapshot, **kwargs)

    def close_session(self, session_id, **kwargs):
        """Drop a live session (optionally deleting its snapshot)."""
        return self.sessions.close(session_id, **kwargs)

    def list_sessions(self):
        """Infos for every live session."""
        return self.sessions.list()

    # -- observability -----------------------------------------------------

    def stats(self) -> ServiceStats:
        """Snapshot queue depth, in-flight, retries, breakers, latency."""
        with self._lock:
            return self._stats.snapshot(
                queue_depth=len(self._queue) + len(self._delayed),
                in_flight=len(self._pool.busy()),
                workers_alive=self._pool.alive_count(),
                workers_configured=self.config.workers,
                breaker_states={k: b.state for k, b in self._breakers.items()},
                admission_limit=(
                    None if self._limiter is None else self._limiter.limit
                ),
                cache=(
                    None if self.cache is None else self.cache.snapshot()
                ),
            )

    def health(self, *, stall_after_s: float = 30.0, include_segments: bool = True):
        """Cross-layer :class:`~repro.resilience.health.HealthReport`.

        Covers per-worker liveness/progress, restart counters, breaker
        states, queue depth against the effective admission limit, shard
        pools owned by this process, and the ledgered shared-memory
        segment inventory (``include_segments=False`` skips the segment
        scan for cheap high-frequency probes).
        """
        from repro.resilience.health import build_health_report

        return build_health_report(
            self,
            stall_after_s=stall_after_s,
            include_segments=include_segments,
        )

    def _note_overload(self) -> None:
        """Feed one overload signal to the limiter (no-op when disabled)."""
        if self._limiter is not None and self._limiter.on_overload():
            self._stats.bump("overloads")

    def breaker(self, problem: str, method: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one engine."""
        key = f"{problem}/{method}"
        b = self._breakers.get(key)
        if b is None:
            b = CircuitBreaker(
                threshold=self.config.breaker_threshold,
                reset_seconds=self.config.breaker_reset_seconds,
            )
            self._breakers[key] = b
        return b

    # -- scheduler internals ----------------------------------------------

    def _outstanding(self) -> int:
        return len(self._queue) + len(self._delayed) + len(self._pool.busy())

    def _run(self) -> None:
        while True:
            with self._lock:
                if self._stop:
                    break
                now = time.monotonic()
                self._promote_delayed(now)
                self._expire_queued(now)
                self._assign(now)
                self._maybe_hedge(now)
                busy = {w.conn: w for w in self._pool.busy()}
            if busy:
                try:
                    ready = mp_connection.wait(
                        list(busy), timeout=self.config.tick
                    )
                except OSError:  # a pipe closed mid-wait; reap below
                    ready = []
            else:
                with self._cond:
                    if not self._stop and not self._queue and not self._delayed:
                        self._cond.wait(timeout=self.config.tick)
                ready = []
            with self._lock:
                now = time.monotonic()
                for conn in ready:
                    worker = busy.get(conn)
                    if worker is None or worker.job is None:
                        continue
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        self._handle_crash(worker, now)
                        continue
                    self._complete(worker, reply, now)
                self._enforce_limits(now)
                self._reap_idle_deaths()
                self._cond.notify_all()

    def _promote_delayed(self, now: float) -> None:
        due = [t for t in self._delayed if t.not_before <= now]
        if due:
            self._delayed = [t for t in self._delayed if t.not_before > now]
            self._queue.extend(due)

    def _expire_queued(self, now: float) -> None:
        for bucket in (self._queue, self._delayed):
            expired = [t for t in bucket if t.deadline is not None and now > t.deadline]
            for t in expired:
                bucket.remove(t)
                self._stats.bump("deadline_failures")
                self._finish_error(
                    t,
                    DeadlineExceededError(
                        f"deadline expired after {now - t.submitted:.3f}s "
                        f"(limit {t.request.timeout_seconds:.3f}s) before dispatch"
                    ),
                    now,
                )

    def _choose_method(self, ticket: _Ticket) -> str:
        """Pick the engine for the next attempt, honoring breakers.

        Raises :class:`CircuitOpenError` when the whole chain is tripped.
        """
        req = ticket.request
        primary = req.method or self.config.default_method
        chain = [primary]
        if self.config.degrade:
            chain += [
                m for m in engine_registry.fallback_chain(req.problem)
                if m != primary
            ]
        candidates = [m for m in chain if m not in ticket.failed_methods]
        if not candidates:
            candidates = chain  # every engine failed once; let retries re-try
        for m in candidates:
            if self.breaker(req.problem, m).allow():
                return m
        raise CircuitOpenError(
            f"all engines unavailable for {req.problem!r}: "
            + ", ".join(
                f"{m}={self.breaker(req.problem, m).state}" for m in chain
            )
        )

    def _chaos_for(self, ticket: _Ticket) -> Optional[Dict[str, Any]]:
        cfg = self.config
        if not cfg.chaos_enabled:
            return None
        attempt = len(ticket.attempts)
        rng = np.random.default_rng((cfg.chaos_seed, ticket.id, attempt))
        if rng.random() < cfg.kill_probability:
            point = cfg.kill_point or ("pre" if rng.random() < 0.5 else "post")
            return {"kill_point": point}
        if (
            ticket.request.problem != "call"
            and cfg.fault_kinds
            and rng.random() < cfg.fault_probability
        ):
            kind = cfg.fault_kinds[int(rng.integers(len(cfg.fault_kinds)))]
            return {
                "fault": {
                    "kind": kind,
                    "seed": int(rng.integers(2**31)),
                    "after": int(rng.integers(0, 4)),
                }
            }
        return None

    def _build_job(
        self, ticket: _Ticket, method: str, now: float
    ) -> Dict[str, Any]:
        req = ticket.request
        job: Dict[str, Any] = {"id": ticket.id, "problem": req.problem}
        chaos = self._chaos_for(ticket)
        if req.problem == "call":
            job["module"] = req.payload["module"]
            job["func"] = req.payload["func"]
            job["args"] = req.payload.get("args", ())
            job["kwargs"] = req.payload.get("kwargs", {})
        else:
            shared = self._shared_for(req.payload)
            if shared is not None:
                job["payload"] = {
                    "kind": "shared",
                    "name": shared.name,
                    "fingerprint": shared.fingerprint,
                }
                reg_ranks = shared.ranks
                if (
                    req.ranks is not None
                    and reg_ranks is not None
                    and np.array_equal(req.ranks, reg_ranks)
                ):
                    # π is already in the segment; don't pickle it too.
                    job["ranks"] = None
                    job["ranks_shared"] = True
                else:
                    job["ranks"] = req.ranks
            else:
                job["payload"] = encode_payload(req.payload)
                job["ranks"] = req.ranks
            job["method"] = method
            guards = req.guards if req.guards is not None else self.config.default_guards
            if chaos and "fault" in chaos and guards in (None, "off"):
                # An armed kernel fault must be *detected or harmless*;
                # run the attempt fully guarded so it cannot return a
                # silent wrong answer.
                guards = "full"
            job["guards"] = guards
            job["budget_steps"] = req.budget_steps
            job["trace_path"] = req.trace_path
            options = dict(req.options)
            if method != (req.method or self.config.default_method):
                # A degraded attempt must not inherit engine-specific
                # knobs: the chain engines reject them at the validation
                # boundary, which would poison every retry.  The strip
                # set comes from the registry's capability flags, so a
                # new gated knob is handled the day its flag exists.
                for knob in engine_registry.unsupported_knobs(
                    req.problem, method
                ):
                    options.pop(knob, None)
            job["options"] = options
            if ticket.deadline is not None:
                job["deadline_seconds"] = max(ticket.deadline - now, 1e-3)
        if chaos:
            job["chaos"] = chaos
        return job

    def _assign(self, now: float) -> None:
        idle = self._pool.idle()
        while self._queue and idle:
            ticket = self._queue.pop(0)
            if ticket.deadline is not None and now > ticket.deadline:
                self._stats.bump("deadline_failures")
                self._finish_error(
                    ticket,
                    DeadlineExceededError(
                        f"deadline expired before dispatch "
                        f"(limit {ticket.request.timeout_seconds:.3f}s)"
                    ),
                    now,
                )
                continue
            try:
                method = (
                    "call" if ticket.request.problem == "call"
                    else self._choose_method(ticket)
                )
            except CircuitOpenError as exc:
                self._finish_error(ticket, exc, now)
                continue
            worker = idle.pop(0)
            job = self._build_job(ticket, method, now)
            try:
                worker.conn.send(job)
            except (BrokenPipeError, OSError):
                # The worker died between polls; replace it and requeue
                # the ticket without consuming an attempt.
                self._stats.bump("worker_crashes")
                self._respawn(worker)
                self._queue.insert(0, ticket)
                continue
            ticket.attempts.append({
                "attempt": len(ticket.attempts),
                "method": method,
                "worker": worker.worker_id,
                "chaos": job.get("chaos"),
            })
            worker.job = ticket
            worker.job_started = now

    def _maybe_hedge(self, now: float) -> None:
        """Dispatch duplicate attempts for slow in-flight solver requests.

        With ``hedge_delay_s`` set, a request whose attempt has been in
        flight at least that long gets a second attempt on an idle
        worker; the first reply resolves the future and the loser's
        reply is dropped in :meth:`_complete`.  Queued work always wins
        over hedges, ``"call"`` requests never hedge (they are not known
        to be idempotent), and each request hedges at most once.
        """
        delay = self.config.hedge_delay_s
        if delay is None or self._queue or self._stop:
            return
        idle = self._pool.idle()
        if not idle:
            return
        for worker in self._pool.busy():
            if not idle:
                return
            ticket: _Ticket = worker.job
            if (
                ticket is None
                or ticket.request.problem == "call"
                or ticket.future.done()
                or worker.job_started is None
                or now - worker.job_started < delay
                or any(a.get("hedge") for a in ticket.attempts)
            ):
                continue
            method = ticket.attempts[-1]["method"]
            hedge_worker = idle.pop(0)
            job = self._build_job(ticket, method, now)
            try:
                hedge_worker.conn.send(job)
            except (BrokenPipeError, OSError):
                self._stats.bump("worker_crashes")
                self._respawn(hedge_worker)
                continue
            ticket.attempts.append({
                "attempt": len(ticket.attempts),
                "method": method,
                "worker": hedge_worker.worker_id,
                "chaos": job.get("chaos"),
                "hedge": True,
            })
            hedge_worker.job = ticket
            hedge_worker.job_started = now
            self._stats.bump("hedges")

    # -- completion paths --------------------------------------------------

    def _attempt_for(self, ticket: _Ticket, worker_id: int) -> Optional[Dict[str, Any]]:
        """The open attempt this worker is serving (hedges mean the last
        attempt is not necessarily this worker's)."""
        for attempt in reversed(ticket.attempts):
            if attempt["worker"] == worker_id and "outcome" not in attempt:
                return attempt
        return None

    def _in_flight_elsewhere(self, ticket: _Ticket) -> bool:
        """Whether another busy worker still serves *ticket* (its hedge
        twin); if so, failure handling defers to the survivor."""
        return any(w.job is ticket for w in self._pool.busy())

    def _complete(self, worker: WorkerHandle, reply: Dict[str, Any], now: float) -> None:
        ticket: _Ticket = worker.job
        worker.job = None
        worker.job_started = None
        worker.jobs_done += 1
        if ticket is None or reply.get("id") != ticket.id:  # pragma: no cover
            return
        attempt = self._attempt_for(ticket, worker.worker_id)
        if attempt is None:  # pragma: no cover - defensive
            return
        if ticket.future.done():
            # A hedge twin already resolved the future; this reply loses.
            attempt["outcome"] = "late"
            return
        if reply.get("ok"):
            attempt["outcome"] = "ok"
            if attempt.get("hedge"):
                self._stats.bump("hedge_wins")
            if ticket.request.problem != "call":
                self.breaker(ticket.request.problem, attempt["method"]).record_success()
            self._finish_ok(
                ticket, self._build_result(ticket, attempt, reply, now), now
            )
        else:
            self._handle_worker_error(ticket, attempt, reply, now)

    def _build_result(
        self,
        ticket: _Ticket,
        attempt: Dict[str, Any],
        reply: Dict[str, Any],
        now: float,
    ) -> Any:
        if reply["kind"] == "call":
            return reply["value"]
        stats_dict = reply["stats"]
        aux = dict(stats_dict["aux"])
        requested = ticket.request.method or self.config.default_method
        served = attempt["method"]
        if served != requested:
            aux["degraded"] = True
            aux["fallback_engine"] = served
        # wall_time_s is submission-to-completion, recorded exactly once
        # per request.  An engine that fanned out inside the worker
        # reports its per-shard busy seconds separately under
        # aux["parallel"]["worker_busy_s"]; those may legitimately sum to
        # more than wall_time_s and are never folded into it.
        aux["service"] = {
            "request_id": ticket.id,
            "engine": served,
            "requested_method": requested,
            "worker": attempt["worker"],
            "retries": ticket.retries,
            "wall_time_s": round(now - ticket.submitted, 6),
            "shared_payload": self._shared_for(ticket.request.payload) is not None,
            "attempts": [dict(a) for a in ticket.attempts],
        }
        stats = RunStats(**{**stats_dict, "aux": aux})
        if reply["kind"] == "mis":
            return MISResult(status=reply["status"], ranks=reply["ranks"], stats=stats)
        return MatchingResult(
            status=reply["status"],
            edge_u=reply["edge_u"],
            edge_v=reply["edge_v"],
            ranks=reply["ranks"],
            stats=stats,
        )

    def _handle_worker_error(
        self,
        ticket: _Ticket,
        attempt: Dict[str, Any],
        reply: Dict[str, Any],
        now: float,
    ) -> None:
        name = reply.get("error_type", "Exception")
        message = reply.get("error", "")
        attempt["outcome"] = f"error:{name}"
        attempt["error"] = message
        if name == "BudgetExceededError":
            if ticket.deadline is not None and message.startswith("wall-clock"):
                self._stats.bump("deadline_failures")
                self._finish_error(
                    ticket,
                    DeadlineExceededError(
                        f"deadline exceeded in worker: {message}"
                    ),
                    now,
                )
            else:
                self._finish_error(ticket, _reconstruct_error(name, message), now)
            return
        if name in _NON_RETRYABLE:
            self._finish_error(ticket, _reconstruct_error(name, message), now)
            return
        # Transient / engine failure: charge the breaker and retry.
        if ticket.request.problem != "call":
            if self.breaker(ticket.request.problem, attempt["method"]).record_failure():
                self._stats.bump("breaker_trips")
            if self.config.degrade:
                ticket.failed_methods.add(attempt["method"])
        if self._in_flight_elsewhere(ticket):
            # The hedge twin is still computing; it decides the outcome.
            return
        self._retry_or_fail(ticket, _reconstruct_error(name, message), now)

    def _handle_crash(self, worker: WorkerHandle, now: float) -> None:
        ticket: _Ticket = worker.job
        worker.job = None
        self._stats.bump("worker_crashes")
        self._respawn(worker)
        if ticket is None:
            return
        attempt = self._attempt_for(ticket, worker.worker_id)
        if attempt is None:  # pragma: no cover - defensive
            return
        attempt["outcome"] = "crash"
        if ticket.future.done():
            return  # the hedge twin already resolved this request
        if ticket.request.problem != "call":
            if self.breaker(ticket.request.problem, attempt["method"]).record_failure():
                self._stats.bump("breaker_trips")
        if self._in_flight_elsewhere(ticket):
            return
        exc = WorkerCrashError(
            f"worker {attempt['worker']} died while serving request {ticket.id} "
            f"({self._attempt_log(ticket)})"
        )
        self._retry_or_fail(ticket, exc, now)

    def _enforce_limits(self, now: float) -> None:
        for worker in self._pool.busy():
            ticket: _Ticket = worker.job
            limit = None
            hang = False
            if ticket.deadline is not None:
                limit = ticket.deadline + self.config.deadline_grace
            elif self.config.hang_timeout is not None:
                limit = worker.job_started + self.config.hang_timeout
                hang = True
            if limit is None or now <= limit:
                continue
            worker.job = None
            attempt = self._attempt_for(ticket, worker.worker_id)
            if attempt is not None:
                attempt["outcome"] = "killed-overdue"
            self._respawn(worker)
            if ticket.future.done():
                continue  # stale hedge loser; nothing to fail or retry
            if hang:
                self._stats.bump("worker_crashes")
                if self._in_flight_elsewhere(ticket):
                    continue
                self._retry_or_fail(
                    ticket,
                    WorkerCrashError(
                        f"worker {worker.worker_id} hung past "
                        f"{self.config.hang_timeout:.3f}s and was killed "
                        f"({self._attempt_log(ticket)})"
                    ),
                    now,
                )
            else:
                self._stats.bump("deadline_failures")
                self._finish_error(
                    ticket,
                    DeadlineExceededError(
                        f"worker overran the deadline by more than the "
                        f"{self.config.deadline_grace:.3f}s grace and was killed"
                    ),
                    now,
                )

    def _reap_idle_deaths(self) -> None:
        for worker in self._pool.idle():
            if not worker.alive():
                self._stats.bump("worker_crashes")
                self._respawn(worker)

    def _respawn(self, worker: WorkerHandle) -> None:
        self._pool.discard(worker, kill=True)
        if not self._stop:
            self._pool.spawn()
            self._stats.bump("worker_restarts")

    # -- retry / finish ----------------------------------------------------

    def _attempt_log(self, ticket: _Ticket) -> str:
        return "; ".join(
            f"attempt {a['attempt']}: {a['method']}@w{a['worker']} -> "
            f"{a.get('outcome', 'in-flight')}"
            for a in ticket.attempts
        )

    def _retry_or_fail(self, ticket: _Ticket, exc: BaseException, now: float) -> None:
        if ticket.retries >= self.config.max_retries:
            self._finish_error(ticket, exc, now)
            return
        ticket.retries += 1
        self._stats.bump("retries")
        delay = self._backoff_delay(ticket)
        if ticket.deadline is not None:
            # Never back off past the deadline; the expiry check would
            # just fail the request later without another attempt.
            delay = min(delay, max(ticket.deadline - now - 1e-3, 0.0))
        ticket.not_before = now + delay
        self._delayed.append(ticket)

    def _backoff_delay(self, ticket: _Ticket) -> float:
        cfg = self.config
        delay = min(
            cfg.backoff_max,
            cfg.backoff_base * cfg.backoff_factor ** (ticket.retries - 1),
        )
        if cfg.backoff_jitter:
            rng = np.random.default_rng((cfg.retry_seed, ticket.id, ticket.retries))
            delay *= 1.0 + cfg.backoff_jitter * (2.0 * rng.random() - 1.0)
        return delay

    def _finish_ok(self, ticket: _Ticket, value: Any, now: float) -> None:
        if ticket.future.done():  # pragma: no cover - hedge twin won a race
            return
        self._stats.bump("completed")
        latency = now - ticket.submitted
        self._stats.record_latency(latency)
        if self._limiter is not None and self._limiter.on_success(latency):
            self._stats.bump("overloads")
        ticket.future._resolve(value)
        with self._cond:  # reentrant from the scheduler; bare from shutdown
            self._cond.notify_all()

    def _finish_error(self, ticket: _Ticket, exc: BaseException, now: float) -> None:
        if ticket.future.done():  # pragma: no cover - hedge twin won a race
            return
        self._stats.bump("failed")
        if isinstance(exc, DeadlineExceededError):
            # Deadline misses are the service's clearest overload signal.
            self._note_overload()
        ticket.future._fail(exc)
        with self._cond:  # reentrant from the scheduler; bare from shutdown
            self._cond.notify_all()


def serve(config: Optional[ServiceConfig] = None, **overrides) -> SolverService:
    """Build and start a :class:`SolverService` (returned already running).

    ``repro.serve(workers=4, max_queue=128)`` is the one-line front door;
    use it as a context manager so shutdown is automatic.
    """
    return SolverService(config, **overrides).start()


def solve_many(
    requests: Iterable[SolveRequest],
    *,
    return_errors: bool = False,
    config: Optional[ServiceConfig] = None,
    **overrides,
) -> List[Any]:
    """Run a batch of requests through a temporary service.

    Spins up a :class:`SolverService` (configured via *config* or
    keyword overrides such as ``workers=4``), pushes every request
    through with backpressure, and shuts the service down.  Results are
    returned in input order; ``return_errors=True`` maps failed requests
    to their exception objects instead of raising.
    """
    with serve(config, **overrides) as svc:
        return svc.solve_many(requests, return_errors=return_errors)
