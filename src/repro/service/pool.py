"""Worker-pool process management: spawn, health, kill, respawn.

:class:`WorkerPool` owns the child processes and their pipes; the
scheduling brain lives in :mod:`repro.service.service`.  Each worker is
one :mod:`multiprocessing` ``Process`` running
:func:`repro.service.worker.worker_main` over its own duplex pipe, so a
hard kill of one worker cannot disturb a sibling: the only shared state
is the parent's bookkeeping.

The default start method is ``"fork"`` (fast startup, the child inherits
the already-imported numpy/repro modules); ``"spawn"`` and
``"forkserver"`` are accepted for callers that need a pristine
interpreter per worker.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional

from repro.service.worker import worker_main

__all__ = ["WorkerHandle", "WorkerPool"]

_START_METHODS = ("fork", "spawn", "forkserver")


class WorkerHandle:
    """One live worker: its process, parent-side pipe end, and current job.

    ``job`` is whatever opaque object the scheduler parked on the worker
    (the service uses its ticket records); ``None`` means idle.
    ``job_started`` is the monotonic time the current job was sent, used
    for deadline and hang enforcement.
    """

    __slots__ = ("worker_id", "process", "conn", "job", "job_started", "jobs_done")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.job = None
        self.job_started: Optional[float] = None
        self.jobs_done = 0

    @property
    def busy(self) -> bool:
        """Whether a job is in flight on this worker."""
        return self.job is not None

    def alive(self) -> bool:
        """Whether the child process is still running."""
        return self.process.is_alive()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "busy" if self.busy else "idle"
        return f"WorkerHandle(id={self.worker_id}, {state}, done={self.jobs_done})"


class WorkerPool:
    """A fixed-size pool of subprocess workers with respawn-on-death.

    The pool never reuses a dead worker's pipe: a crashed or killed
    worker is discarded wholesale and a fresh process takes its slot.
    All methods are intended to be called from a single scheduler thread
    (plus :meth:`start`/:meth:`shutdown` from the owning service).
    """

    def __init__(
        self,
        size: int,
        *,
        start_method: str = "fork",
        sys_path: tuple = (),
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if start_method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS}, got {start_method!r}"
            )
        self.size = size
        self.sys_path = tuple(str(p) for p in sys_path)
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: Dict[int, WorkerHandle] = {}
        self._next_id = 0
        self.spawn_count = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn the initial complement of workers."""
        while len(self._workers) < self.size:
            self.spawn()
        return self

    def spawn(self) -> WorkerHandle:
        """Start one fresh worker process and register its handle."""
        worker_id = self._next_id
        self._next_id += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # NOT daemonic: a daemonic process may not have children, and the
        # parallel-vec engines fan out to shard subprocesses inside the
        # worker.  Orphan safety does not depend on the flag — a worker
        # whose parent dies sees EOF on its pipe and exits, and its own
        # shard children exit the same way one level down.
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, worker_id, self.sys_path),
            name=f"repro-solver-worker-{worker_id}",
            daemon=False,
        )
        process.start()
        # Close the parent's copy of the child end so a dead worker shows
        # up as EOF on parent_conn instead of hanging forever.
        child_conn.close()
        handle = WorkerHandle(worker_id, process, parent_conn)
        self._workers[worker_id] = handle
        self.spawn_count += 1
        return handle

    def discard(self, handle: WorkerHandle, *, kill: bool = True) -> None:
        """Remove a worker from the pool, killing the process if asked.

        Used both for deliberate kills (deadline enforcement) and for
        reaping a worker that died on its own.  The pipe is closed so no
        stale fd lingers in the scheduler's wait set.
        """
        self._workers.pop(handle.worker_id, None)
        handle.job = None
        if kill and handle.process.is_alive():
            handle.process.kill()
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        handle.process.join(timeout=1.0)

    def replace(self, handle: WorkerHandle, *, kill: bool = True) -> WorkerHandle:
        """Discard *handle* and spawn its replacement."""
        self.discard(handle, kill=kill)
        return self.spawn()

    def shutdown(self, timeout: float = 2.0) -> None:
        """Gracefully stop every worker; escalate to kill on stragglers."""
        deadline = time.monotonic() + timeout
        for handle in list(self._workers.values()):
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for handle in list(self._workers.values()):
            remaining = max(0.0, deadline - time.monotonic())
            handle.process.join(timeout=remaining)
            self.discard(handle, kill=True)
        self._workers.clear()

    # -- views -------------------------------------------------------------

    def workers(self) -> List[WorkerHandle]:
        """All registered handles (alive or not yet reaped)."""
        return list(self._workers.values())

    def idle(self) -> List[WorkerHandle]:
        """Workers with no job in flight, in id order."""
        return [w for w in self._workers.values() if not w.busy]

    def busy(self) -> List[WorkerHandle]:
        """Workers with a job in flight, in id order."""
        return [w for w in self._workers.values() if w.busy]

    def alive_count(self) -> int:
        """Number of registered workers whose process is running."""
        return sum(1 for w in self._workers.values() if w.alive())

    def __len__(self) -> int:
        return len(self._workers)
