"""Worker-side registry of attached shared-memory graph bundles.

The request path for a graph registered with
:meth:`~repro.service.SolverService.register_graph` sends only ``{"kind":
"shared", "name": <segment>, "fingerprint": <hash>}`` across the pipe —
no arrays.  The worker resolves the name through this module:
:func:`attach_shared` attaches the segment once per process, verifies the
fingerprint against what the parent registered, seeds the memoized
partition caches from the shipped arrays
(:meth:`~repro.backends.SharedCSR.seed_caches`), and caches the
attachment so every later request for the same graph reuses one zero-copy
:class:`~repro.graphs.csr.CSRGraph` / :class:`~repro.graphs.csr.EdgeList`
object — which is exactly what makes the engine-layer memo caches hit.

The cache is keyed by ``os.getpid()`` so a forked child never trusts
attachments inherited from its parent's address space.  Attachments are
never unlinked here (the parent owns every segment); a worker dying with
open attachments leaks nothing — the kernel drops its mappings, and the
name is removed when the owner unlinks.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro.backends.sharedmem import SharedCSR
from repro.errors import GraphFormatError

__all__ = ["attach_shared", "attached_names", "detach_all", "detach_shared"]

# (pid) -> {segment name -> attachment}; pid-keyed so fork never reuses
# a parent's attachments (their views are valid but their lifecycle isn't
# ours to manage twice).
_CACHE: Tuple[int, Dict[str, SharedCSR]] = (-1, {})


def _attachments() -> Dict[str, SharedCSR]:
    global _CACHE
    pid = os.getpid()
    if _CACHE[0] != pid:
        _CACHE = (pid, {})
    return _CACHE[1]


def attach_shared(name: str, fingerprint: str = None) -> SharedCSR:
    """Attach (or reuse) the named graph bundle and seed local caches.

    Verifies *fingerprint* (when given) against the bundle's stored
    content hash — a mismatch means the name was recycled or the request
    is stale, and raises :class:`~repro.errors.GraphFormatError` (a
    non-retryable input error: every retry would fail identically).  The
    first attach per process also seeds the memoized partition caches
    from the shipped arrays, so the first solve runs warm.
    """
    cache = _attachments()
    shared = cache.get(name)
    if shared is None:
        shared = SharedCSR.attach(name)
        cache[name] = shared
    if fingerprint is not None and shared.fingerprint != fingerprint:
        cache.pop(name, None)
        shared.close()
        raise GraphFormatError(
            f"shared segment {name!r} fingerprint mismatch: "
            f"request expects {fingerprint}, segment holds {shared.fingerprint} "
            "(was the graph released and the name recycled?)"
        )
    shared.seed_caches()
    return shared


def detach_shared(name: str) -> bool:
    """Drop this process's attachment to *name* (returns whether it existed)."""
    shared = _attachments().pop(name, None)
    if shared is None:
        return False
    shared.close()
    return True


def detach_all() -> int:
    """Drop every attachment in this process; returns how many were open."""
    cache = _attachments()
    count = len(cache)
    for shared in cache.values():
        shared.close()
    cache.clear()
    return count


def attached_names() -> Tuple[str, ...]:
    """Names currently attached in this process (diagnostics / tests)."""
    return tuple(_attachments())
