"""One wire schema for solve requests and results.

The HTTP gateway, the CLI ``batch`` subcommand, and
:class:`~repro.service.config.SolveRequest` all speak the same JSON
dialect; this module is its single definition, so the three front doors
cannot drift field-by-field (the round-trip property test pins
``decode(encode(x)) == x``).

A solve object looks like::

    {"problem": "mis" | "matching" | "mm",
     "graph":   {"n": 5, "edges": [[0, 1], [1, 2]]} | "<registered name>",
     "ranks":   [...],          # optional explicit priorities
     "seed":    7,              # optional (merged into options)
     "method":  "rootset-vec",  # optional engine name
     "guards":  "full",         # optional guard mode
     "budget_steps": 10000,     # optional step budget
     "timeout_s": 2.5,          # optional wall-clock deadline
     "options": {...}}          # optional SolveOptions wire fields

Malformed objects raise plain :class:`ValueError` with a client-facing
message; transports map it onto their own status taxonomy (the gateway
to ``400``, the CLI to exit code ``2``).  Graph *names* only resolve
when the caller passes a ``graph_resolver`` (the gateway's registered
graphs); the CLI and tests use inline graphs.

The result schema (:func:`encode_result`) holds only fields that are a
pure function of (graph, π, method, knobs) so cached and fresh bodies
stay byte-identical — run-varying details ride response headers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.result import MatchingResult
from repro.graphs.builders import from_edges
from repro.graphs.csr import CSRGraph, EdgeList
from repro.service.config import SolveRequest

__all__ = [
    "MUTATE_FIELDS",
    "SOLVE_FIELDS",
    "build_inline_graph",
    "decode_mutate",
    "decode_solve",
    "encode_solve",
    "encode_result",
]

#: The complete legal field set of one wire solve object.
SOLVE_FIELDS = frozenset({
    "problem", "graph", "ranks", "seed", "method", "guards",
    "budget_steps", "timeout_s", "options",
})

#: The complete legal field set of one wire session-mutate object.
MUTATE_FIELDS = frozenset({
    "insertions", "deletions", "timeout_s", "mutation_id", "if_version",
})

#: graph_resolver(name, problem) -> (payload, default_ranks)
GraphResolver = Callable[[str, str], Tuple[Any, Optional[np.ndarray]]]


def build_inline_graph(obj: Dict[str, Any]) -> CSRGraph:
    """Build a CSR graph from the inline ``{"n": …, "edges": […]}`` form."""
    try:
        n = int(obj["n"])
        edges = obj.get("edges", [])
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        return from_edges(n, arr[:, 0], arr[:, 1])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed inline graph: {exc}") from exc


def decode_solve(
    obj: Any,
    *,
    default_timeout_s: Optional[float] = None,
    timeout_override: Optional[float] = None,
    graph_resolver: Optional[GraphResolver] = None,
) -> Tuple[SolveRequest, Optional[float]]:
    """Decode one wire solve object into ``(SolveRequest, timeout_s)``.

    Parameters
    ----------
    obj:
        The parsed JSON value (must be an object).
    default_timeout_s:
        Deadline applied when the object sets none.
    timeout_override:
        A transport-level deadline (e.g. the gateway's
        ``X-Repro-Timeout-S`` header) used when the object sets none;
        wins over *default_timeout_s*.
    graph_resolver:
        Resolves a string ``graph`` field to ``(payload,
        default_ranks)``; without one, string names raise
        ``ValueError``.
    """
    if not isinstance(obj, dict):
        raise ValueError("solve request must be a JSON object")
    unknown = set(obj) - SOLVE_FIELDS
    if unknown:
        raise ValueError(f"unknown fields: {', '.join(sorted(unknown))}")
    problem = obj.get("problem", "mis")
    if problem not in ("mis", "matching", "mm"):
        raise ValueError(f"problem must be 'mis' or 'matching', got {problem!r}")
    if problem == "mm":
        problem = "matching"

    graph = obj.get("graph")
    default_ranks: Optional[np.ndarray] = None
    if isinstance(graph, str):
        if graph_resolver is None:
            raise ValueError(
                f"graph names are not resolvable here; inline the graph "
                f"as {{'n': …, 'edges': […]}} (got {graph!r})"
            )
        payload, default_ranks = graph_resolver(graph, problem)
    elif isinstance(graph, dict):
        built = build_inline_graph(graph)
        payload = built if problem == "mis" else built.edge_list()
    else:
        raise ValueError(
            "graph must be a registered name or {'n': …, 'edges': […]}"
        )

    options = dict(obj.get("options") or {})
    if obj.get("seed") is not None:
        options["seed"] = int(obj["seed"])
    ranks = obj.get("ranks")
    if ranks is not None:
        try:
            arr = np.asarray(ranks)
        except (TypeError, ValueError):
            raise ValueError("ranks must be a flat array of numbers")
        if arr.ndim != 1 or arr.dtype.kind not in "iuf":
            raise ValueError("ranks must be a flat array of numbers")
        ranks = arr
    elif problem == "mis" and "seed" not in options:
        # A registered graph's π is the default ordering only when the
        # request pins neither ranks nor a seed of its own.
        ranks = default_ranks

    timeout_s = obj.get("timeout_s")
    if timeout_s is None:
        timeout_s = timeout_override
    if timeout_s is None:
        timeout_s = default_timeout_s
    try:
        request = SolveRequest(
            problem,
            payload,
            ranks=ranks,
            method=obj.get("method"),
            guards=obj.get("guards"),
            timeout_seconds=timeout_s,
            budget_steps=obj.get("budget_steps"),
            options=options,
        )
    except (TypeError, ValueError) as exc:
        raise ValueError(str(exc)) from exc
    return request, timeout_s


def decode_mutate(
    obj: Any,
    *,
    header_mutation_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Decode one wire session-mutate object into ``mutate()`` keywords.

    Returns a dict with keys ``insertions``, ``deletions``,
    ``mutation_id``, and ``if_version`` (timeouts are resolved by the
    transport and are not returned here).  *header_mutation_id* carries
    the gateway's ``X-Repro-Idempotency-Key`` header; when both the
    header and the body name a key they must agree, so a retry that
    garbles one of them cannot silently bypass deduplication.

    Malformed objects raise plain :class:`ValueError`, mapped by the
    gateway to ``400`` like every other schema error.
    """
    if not isinstance(obj, dict):
        raise ValueError("mutate request must be a JSON object")
    unknown = set(obj) - MUTATE_FIELDS
    if unknown:
        raise ValueError(f"unknown fields: {', '.join(sorted(unknown))}")
    mutation_id = obj.get("mutation_id")
    if mutation_id is not None and (
        not isinstance(mutation_id, str) or not mutation_id
    ):
        raise ValueError("mutation_id must be a non-empty string")
    if header_mutation_id is not None:
        if mutation_id is not None and mutation_id != header_mutation_id:
            raise ValueError(
                "mutation_id in body disagrees with the "
                "X-Repro-Idempotency-Key header"
            )
        mutation_id = header_mutation_id
    if_version = obj.get("if_version")
    if if_version is not None:
        if isinstance(if_version, bool) or not isinstance(if_version, int):
            raise ValueError("if_version must be an integer")
        if if_version < 0:
            raise ValueError("if_version must be >= 0")
    return {
        "insertions": obj.get("insertions") or (),
        "deletions": obj.get("deletions") or (),
        "mutation_id": mutation_id,
        "if_version": if_version,
    }


def encode_solve(request: SolveRequest) -> Dict[str, Any]:
    """Encode a :class:`SolveRequest` back into the wire object.

    The inverse of :func:`decode_solve` for inline-graph requests (the
    round-trip property the schema test pins).  ``"call"`` requests and
    requests whose payload is not a plain graph are not wire
    representations and raise ``ValueError``.
    """
    payload = request.payload
    if isinstance(payload, CSRGraph):
        el = payload.edge_list()
        n = payload.num_vertices
    elif isinstance(payload, EdgeList):
        el = payload
        n = payload.num_vertices
    else:
        raise ValueError(
            f"cannot encode a {request.problem!r} request whose payload is "
            f"{type(payload).__name__}"
        )
    obj: Dict[str, Any] = {
        "problem": request.problem,
        "graph": {
            "n": n,
            "edges": np.stack([el.u, el.v], axis=1).tolist() if el.num_edges else [],
        },
    }
    if request.ranks is not None:
        obj["ranks"] = np.asarray(request.ranks).tolist()
    if request.method is not None:
        obj["method"] = request.method
    if request.guards is not None:
        obj["guards"] = request.guards
    if request.timeout_seconds is not None:
        obj["timeout_s"] = request.timeout_seconds
    if request.budget_steps is not None:
        obj["budget_steps"] = request.budget_steps
    if request.options:
        obj["options"] = dict(request.options)
    return obj


def encode_result(
    request: Union[SolveRequest, str], result: Any
) -> Dict[str, Any]:
    """Deterministic result body shared by the gateway and CLI batch.

    Only fields that are a pure function of (graph, π, method, knobs), so
    cold, warm-hit, and stale-degraded responses for one content address
    are byte-identical.  ``aux["dynamic"]`` (session re-peel accounting)
    is deterministic too and rides along when present.  *request* may be
    a bare problem name — session results have no :class:`SolveRequest`.
    """
    problem = request if isinstance(request, str) else request.problem
    stats = result.stats
    body = {
        "problem": problem,
        "n": stats.n,
        "m": stats.m,
        "size": result.size,
        "status": result.status.tolist(),
        "ranks": np.asarray(result.ranks).tolist(),
        "steps": stats.steps,
        "rounds": stats.rounds,
        "work": stats.work,
        "depth": stats.depth,
    }
    if isinstance(result, MatchingResult):
        body["edge_u"] = result.edge_u.tolist()
        body["edge_v"] = result.edge_v.tolist()
    dynamic = stats.aux.get("dynamic")
    if dynamic is not None:
        body["dynamic"] = dynamic
    return body
