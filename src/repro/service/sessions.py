"""Stateful graph sessions on top of the crash-isolated service.

A *session* is a long-lived incremental MIS/matching maintainer
(:mod:`repro.dynamic.incremental`) served through the
:class:`~repro.service.SolverService` worker pool.  The parent holds the
**committed state** — the JSON-safe ``to_state()`` snapshot of the last
successful version — and runs every state transition inside a worker via
the generic ``"call"`` job kind pointing at
:mod:`repro.dynamic.jobs`.  That split is what makes sessions survive
worker crashes:

1. A mutation ships ``(committed state, batch)`` to a worker, which
   replays the maintainer and applies the batch.
2. The parent commits the returned state **only on success** and bumps
   the version.
3. A worker killed mid-mutation (chaos, OOM, hang) is simply retried by
   the service's normal retry machinery with the *same* committed
   input; the maintainers are deterministic, so the replayed attempt
   reproduces the bit-identical result.  Half-applied state can never
   be observed because it never leaves the dead worker.

Queries (:meth:`SessionManager.result`) are read-only reconstructions
from the committed state and run in-parent — they cannot corrupt
anything and need no isolation.

With a :class:`~repro.dynamic.store.SnapshotStore` attached, every
committed version is also persisted atomically, so sessions additionally
survive full service restarts via :meth:`SessionManager.restore`.

Worker-crash retries are safe because the *service* retries from the
same committed input — but a **client** retry after an ambiguous outcome
(the response was lost after the commit landed) would re-apply the
batch.  Two per-mutation knobs close that gap:

* ``mutation_id`` — a client-chosen idempotency key.  Each record keeps
  a bounded, snapshot-persisted window of applied ids
  (:data:`DEDUP_WINDOW`); a duplicate replays the *recorded outcome*
  (summary + version) without touching a worker, so retrying until a
  definite answer arrives is exactly-once.
* ``if_version`` — a compare-and-swap precondition.  If the committed
  version has moved, the mutation fails with the typed
  :class:`~repro.errors.VersionConflictError` (HTTP ``409``), turning
  lost-update races between concurrent clients into detectable errors.

The front doors are :class:`~repro.service.SolverService`'s delegating
methods (``create_session`` …), the gateway's ``/v1/sessions`` routes,
and the ``repro session`` CLI subcommand.
"""

from __future__ import annotations

import copy
import itertools
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.options import SolveOptions, resolve_options
from repro.errors import (
    InvalidGraphError,
    UnknownSessionError,
    VersionConflictError,
)
from repro.service.config import SolveRequest

__all__ = ["DEDUP_WINDOW", "SessionInfo", "SessionManager"]

_PROBLEMS = ("mis", "matching")

#: Applied mutation ids remembered per session for idempotent replay.
#: Bounds both memory and snapshot size; a client retrying one ambiguous
#: mutation needs a window of exactly 1, so 128 leaves two orders of
#: magnitude of slack for pipelined writers before an evicted id could
#: make a very late duplicate re-apply.
DEDUP_WINDOW = 128

#: Registry placeholder: the id is claimed by an in-flight create/restore
#: whose initial worker call has not committed yet.  Holding the slot
#: under the registry lock closes the check-then-commit race where two
#: concurrent create() calls with the same explicit id both pass the
#: duplicate check and the later commit silently overwrites the earlier
#: session.
_RESERVED = object()


def _normalize_batch(edges: Sequence[Any], label: str) -> List[Tuple[int, int]]:
    """Coerce one mutation batch into ``[(int, int), ...]``."""
    out: List[Tuple[int, int]] = []
    for item in edges or ():
        try:
            u, v = item
            out.append((int(u), int(v)))
        except (TypeError, ValueError):
            raise InvalidGraphError(
                f"{label} must be (u, v) pairs, got {item!r}"
            ) from None
    return out


@dataclass
class SessionInfo:
    """Public, JSON-safe description of one live session."""

    session_id: str
    problem: str
    version: int
    n: int
    m: int
    size: int
    dynamic: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "problem": self.problem,
            "version": self.version,
            "n": self.n,
            "m": self.m,
            "size": self.size,
            "dynamic": self.dynamic,
        }


@dataclass
class _SessionRecord:
    """Parent-side committed state of one session."""

    session_id: str
    problem: str
    state: Dict[str, Any]
    version: int
    n: int
    m: int
    size: int
    guards: Optional[str]
    dynamic: Dict[str, Any]
    #: Opaque timeline token, minted fresh on every create/restore and
    #: shipped with mutations so the worker-side warm-maintainer cache
    #: (:mod:`repro.dynamic.jobs`) can never serve a maintainer from an
    #: abandoned timeline (closed-and-recreated id, older snapshot).
    epoch: str = ""
    #: mutation_id → recorded outcome, oldest first; bounded by
    #: :data:`DEDUP_WINDOW` and persisted with every snapshot so
    #: exactly-once survives full restarts, not just worker respawns.
    applied: "OrderedDict[str, Dict[str, Any]]" = field(
        default_factory=OrderedDict
    )
    lock: threading.Lock = field(default_factory=threading.Lock)
    # (version, result) — queries rebuild from committed state lazily.
    _result_cache: Optional[Tuple[int, Any]] = None

    def info(self) -> SessionInfo:
        return SessionInfo(
            self.session_id, self.problem, self.version,
            self.n, self.m, self.size, dict(self.dynamic),
        )


class SessionManager:
    """Session registry + lifecycle for one :class:`SolverService`.

    Mutations on one session serialize on its per-record lock (versions
    are a linear history); distinct sessions mutate concurrently through
    the shared worker pool.
    """

    def __init__(self, service, store=None) -> None:
        self._service = service
        self._store = store
        # id → _SessionRecord, or the _RESERVED placeholder while an
        # initial create/restore worker call is in flight.
        self._sessions: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count()
        # Lifetime counters surfaced by health() and /v1/metrics.
        self.mutations_applied = 0
        self.idempotent_replays = 0
        self.version_conflicts = 0

    # -- helpers -----------------------------------------------------------

    def _record(self, session_id: str) -> _SessionRecord:
        with self._lock:
            record = self._sessions.get(session_id)
        if not isinstance(record, _SessionRecord):  # absent or _RESERVED
            raise UnknownSessionError(
                f"no live session {session_id!r}"
                + (" (restore_session can revive a persisted snapshot)"
                   if self._store is not None else "")
            )
        return record

    def _call(
        self,
        func: str,
        kwargs: Dict[str, Any],
        timeout_s: Optional[float],
    ) -> Dict[str, Any]:
        request = SolveRequest(
            "call",
            {
                "module": "repro.dynamic.jobs",
                "func": func,
                "kwargs": kwargs,
            },
            timeout_seconds=timeout_s,
        )
        return self._service.solve(request)

    def _persist(self, record: _SessionRecord) -> None:
        if self._store is None:
            return
        self._store.save(record.session_id, {
            "session_id": record.session_id,
            "problem": record.problem,
            "version": record.version,
            "guards": record.guards,
            "state": record.state,
            "dynamic": record.dynamic,
            "applied": [[mid, out] for mid, out in record.applied.items()],
        })

    @staticmethod
    def _applied_window(raw: Any) -> "OrderedDict[str, Dict[str, Any]]":
        """Rebuild a dedup window from its snapshot form (list of pairs)."""
        window: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        if isinstance(raw, list):
            for item in raw:
                if (
                    isinstance(item, (list, tuple)) and len(item) == 2
                    and isinstance(item[0], str) and isinstance(item[1], dict)
                ):
                    window[item[0]] = item[1]
        while len(window) > DEDUP_WINDOW:
            window.popitem(last=False)
        return window

    def _commit(
        self,
        session_id: str,
        problem: str,
        summary: Dict[str, Any],
        version: int,
        guards: Optional[str],
        applied: Optional["OrderedDict[str, Dict[str, Any]]"] = None,
    ) -> _SessionRecord:
        record = _SessionRecord(
            session_id=session_id,
            problem=problem,
            state=summary["state"],
            version=version,
            n=summary["n"],
            m=summary["m"],
            size=summary["size"],
            guards=guards,
            dynamic=summary["dynamic"],
            # A commit here is always a timeline boundary (create or
            # restore), so the epoch is always fresh.
            epoch=uuid.uuid4().hex,
            applied=applied if applied is not None else OrderedDict(),
        )
        with self._lock:
            self._sessions[session_id] = record
        self._persist(record)
        return record

    def _reserve(self, session_id: str, *, verb: str) -> None:
        """Claim *session_id* in the registry before the worker call."""
        with self._lock:
            existing = self._sessions.get(session_id)
            if isinstance(existing, _SessionRecord):
                raise InvalidGraphError(
                    f"session {session_id!r} already exists"
                    + ("; close it before restoring" if verb == "restore" else "")
                )
            if existing is _RESERVED:
                raise InvalidGraphError(
                    f"session {session_id!r} is already being created"
                )
            self._sessions[session_id] = _RESERVED

    def _release(self, session_id: str) -> None:
        """Drop a reservation whose worker call failed."""
        with self._lock:
            if self._sessions.get(session_id) is _RESERVED:
                del self._sessions[session_id]

    # -- lifecycle ---------------------------------------------------------

    def create(
        self,
        problem: str,
        payload: Any,
        ranks: Any = None,
        *,
        seed: Optional[int] = None,
        guards: Optional[str] = None,
        session_id: Optional[str] = None,
        timeout_s: Optional[float] = None,
        options: Optional["SolveOptions"] = None,
    ) -> SessionInfo:
        """Initial solve: version 0 of a new session.

        ``payload`` is a :class:`~repro.graphs.csr.CSRGraph` for
        ``"mis"`` and a graph or edge list for ``"matching"`` — the same
        shapes the stateless front doors take.  ``options`` accepts the
        unified :class:`~repro.core.options.SolveOptions` record (its
        ``seed``/``guards`` fields are the knobs a maintainer consumes);
        the ``seed=``/``guards=`` keywords remain as the legacy shim and
        may not be mixed with it.
        """
        resolved = resolve_options(options, {"seed": seed, "guards": guards})
        seed, guards = resolved.seed, resolved.guards
        if problem == "mm":
            problem = "matching"
        if problem not in _PROBLEMS:
            raise InvalidGraphError(
                f"session problem must be one of {_PROBLEMS}, got {problem!r}"
            )
        if session_id is None:
            session_id = f"s{next(self._counter)}-{uuid.uuid4().hex[:12]}"
        if ranks is not None:
            ranks = np.asarray(ranks)
        self._reserve(session_id, verb="create")
        try:
            summary = self._call(
                "create_session_state",
                {
                    "problem": problem,
                    "payload": payload,
                    "ranks": ranks,
                    "seed": seed,
                    "guards": guards,
                },
                timeout_s,
            )
        except BaseException:
            self._release(session_id)
            raise
        return self._commit(session_id, problem, summary, 0, guards).info()

    def mutate(
        self,
        session_id: str,
        insertions: Sequence[Any] = (),
        deletions: Sequence[Any] = (),
        *,
        timeout_s: Optional[float] = None,
        mutation_id: Optional[str] = None,
        if_version: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Apply one edge-mutation batch; returns the batch stats.

        Commits the worker's returned state only on success, so a
        crashed attempt is retried from the same committed version and
        the session can never be observed half-mutated.

        ``mutation_id`` makes the call idempotent: an id already in the
        session's dedup window replays the recorded outcome (flagged
        ``idempotent_replay``) without invoking a worker, so clients may
        retry ambiguous outcomes safely.  ``if_version`` is a
        compare-and-swap precondition against the committed version;
        on mismatch the batch is *not* applied and
        :class:`~repro.errors.VersionConflictError` is raised.  The
        duplicate check runs first: a retried duplicate still carrying
        its original ``if_version`` replays instead of conflicting.
        """
        if mutation_id is not None:
            if not isinstance(mutation_id, str) or not mutation_id:
                raise InvalidGraphError(
                    f"mutation_id must be a non-empty string, "
                    f"got {mutation_id!r}"
                )
            if len(mutation_id) > 200:
                raise InvalidGraphError(
                    "mutation_id must be at most 200 characters"
                )
        if if_version is not None:
            try:
                if_version = int(if_version)
            except (TypeError, ValueError):
                raise InvalidGraphError(
                    f"if_version must be an integer, got {if_version!r}"
                ) from None
            if if_version < 0:
                raise InvalidGraphError("if_version must be >= 0")
        ins = _normalize_batch(insertions, "insertions")
        dels = _normalize_batch(deletions, "deletions")
        record = self._record(session_id)
        with record.lock:
            if mutation_id is not None and mutation_id in record.applied:
                outcome = record.applied[mutation_id]
                # Refresh recency so a hot retried id is evicted last.
                record.applied.move_to_end(mutation_id)
                with self._lock:
                    self.idempotent_replays += 1
                return dict(outcome, idempotent_replay=True)
            if if_version is not None and if_version != record.version:
                with self._lock:
                    self.version_conflicts += 1
                raise VersionConflictError(
                    f"session {session_id!r} is at version {record.version}, "
                    f"mutation requires if_version={if_version}; re-read the "
                    f"current state before deciding to retry"
                )
            summary = self._call(
                "mutate_session_state",
                {
                    "state": record.state,
                    "insertions": ins,
                    "deletions": dels,
                    "epoch": record.epoch,
                    "version": record.version,
                    "guards": record.guards,
                },
                timeout_s,
            )
            record.state = summary["state"]
            record.version += 1
            record.n = summary["n"]
            record.m = summary["m"]
            record.size = summary["size"]
            record.dynamic = summary["dynamic"]
            record._result_cache = None
            outcome = dict(
                summary["dynamic"],
                version=record.version,
                size=record.size,
                m=record.m,
            )
            if mutation_id is not None:
                # Record the outcome *before* persisting so the snapshot
                # that makes this version durable also makes it
                # replayable — the two can never diverge across a crash.
                record.applied[mutation_id] = dict(outcome)
                while len(record.applied) > DEDUP_WINDOW:
                    record.applied.popitem(last=False)
            with self._lock:
                self.mutations_applied += 1
            self._persist(record)
            return outcome

    def result(self, session_id: str, *, with_version: bool = False):
        """The full result object for the committed version.

        A read-only reconstruction from committed state (deterministic,
        no worker round-trip); cached per version.  With
        ``with_version=True`` returns ``(result, version)`` read under
        the record lock, so callers that echo the version alongside the
        payload (the gateway) cannot pair a result with the version of a
        concurrent later mutation.
        """
        from repro.dynamic.jobs import _maintainer_from_state

        record = self._record(session_id)
        with record.lock:
            cached = record._result_cache
            if cached is not None and cached[0] == record.version:
                result = cached[1]
            else:
                result = _maintainer_from_state(record.state).result()
                record._result_cache = (record.version, result)
            return (result, record.version) if with_version else result

    def info(self, session_id: str) -> SessionInfo:
        return self._record(session_id).info()

    def snapshot(self, session_id: str) -> Dict[str, Any]:
        """A portable snapshot of the committed version.

        Deep-copied, so callers can serialize or mutate it freely; feed
        it back through :meth:`restore` (possibly on a different
        service) to revive the session.
        """
        record = self._record(session_id)
        with record.lock:
            return copy.deepcopy({
                "session_id": record.session_id,
                "problem": record.problem,
                "version": record.version,
                "guards": record.guards,
                "state": record.state,
                "dynamic": record.dynamic,
                "applied": [
                    [mid, out] for mid, out in record.applied.items()
                ],
            })

    def restore(
        self,
        snapshot: Optional[Dict[str, Any]] = None,
        *,
        session_id: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> SessionInfo:
        """Revive a session from a snapshot (or the persistent store).

        The snapshot is validated by rebuilding the maintainer inside a
        worker (with the session's guard mode), so a corrupt snapshot
        fails loudly here instead of poisoning later mutations.

        Refuses to replace a *live* session (``InvalidGraphError``):
        silently swapping the timeline under a concurrent mutation would
        let that mutation re-persist old-timeline state over the
        restored snapshot.  Close the session first.
        """
        if snapshot is None:
            if self._store is None:
                raise UnknownSessionError(
                    "restore needs a snapshot (no session_dir configured)"
                )
            if session_id is None:
                raise UnknownSessionError(
                    "restore from the store needs a session_id"
                )
            snapshot = self._store.load(session_id)
            if snapshot is None:
                raise UnknownSessionError(
                    f"no persisted snapshot for session {session_id!r}"
                )
        if not isinstance(snapshot, dict) or "state" not in snapshot:
            raise InvalidGraphError(
                "session snapshot must be a dict holding 'state'"
            )
        sid = session_id or snapshot.get("session_id")
        if not sid:
            raise UnknownSessionError("snapshot names no session_id")
        guards = snapshot.get("guards")
        self._reserve(sid, verb="restore")
        try:
            summary = self._call(
                "restore_session_state",
                {"state": snapshot["state"], "guards": guards},
                timeout_s,
            )
        except BaseException:
            self._release(sid)
            raise
        return self._commit(
            sid, snapshot["state"].get("problem", snapshot.get("problem")),
            summary, int(snapshot.get("version", 0)), guards,
            applied=self._applied_window(snapshot.get("applied")),
        ).info()

    def close(self, session_id: str, *, delete_snapshot: bool = False) -> SessionInfo:
        """Drop a session; optionally also its persisted snapshot."""
        with self._lock:
            record = self._sessions.get(session_id)
            if isinstance(record, _SessionRecord):
                del self._sessions[session_id]
            else:
                # Absent, or a _RESERVED placeholder an in-flight
                # create/restore still needs — leave the reservation.
                record = None
        if record is None:
            raise UnknownSessionError(f"no live session {session_id!r}")
        if delete_snapshot and self._store is not None:
            self._store.delete(session_id)
        return record.info()

    def list(self) -> List[SessionInfo]:
        """Infos for every live session (sorted by id)."""
        with self._lock:
            records = sorted(
                (r for r in self._sessions.values()
                 if isinstance(r, _SessionRecord)),
                key=lambda r: r.session_id,
            )
        return [r.info() for r in records]

    def counters(self) -> Dict[str, int]:
        """Lifetime session counters for health() and /v1/metrics."""
        with self._lock:
            live = sum(
                1 for r in self._sessions.values()
                if isinstance(r, _SessionRecord)
            )
            return {
                "live_sessions": live,
                "mutations_applied": self.mutations_applied,
                "idempotent_replays": self.idempotent_replays,
                "version_conflicts": self.version_conflicts,
            }
