"""Subprocess worker: the crash-isolated execution side of the service.

A worker is a child process running :func:`worker_main` over one duplex
pipe.  The parent sends one *job* dict at a time (a worker is never sent
a second job before replying), the worker executes it and sends back one
*reply* dict.  Everything crossing the pipe is plain picklable data —
numpy arrays, dicts, strings — never live library objects, so a corrupt
or dying worker cannot poison parent state.

Job kinds:

``"mis"`` / ``"matching"``
    Rebuild the graph payload (the constructors re-validate, so corrupted
    bytes fail loudly inside the worker), then run
    :func:`repro.core.engines.solve` with the requested method, guards,
    and a :class:`~repro.robustness.Budget` derived from the propagated
    deadline.  The reply carries the status/rank arrays plus the
    :class:`~repro.core.result.RunStats` fields.
``"call"``
    Import ``module.func`` and call it with ``args``/``kwargs`` — generic
    crash-isolated execution used by ``scripts/run_experiments.py`` to
    run report sections in worker processes.

Chaos hooks (all driven by the parent, seeded, replayable): a job may
carry ``chaos.kill_point`` (``"pre"``/``"post"`` — the worker hard-exits
via ``os._exit`` before or after computing, simulating an OOM kill; the
``"post"`` variant computes a result and then loses it, so the retry
must reproduce it bit-for-bit) and ``chaos.fault`` (a
:class:`~repro.robustness.FaultSpec` armed around the solve via
:class:`~repro.robustness.ChaosInjector`).

Every exception escaping a job is serialized as ``{"ok": False,
"error_type": <class name>, "error": <message>}``; the parent maps the
name back onto the :mod:`repro.errors` taxonomy.
"""

from __future__ import annotations

import importlib
import os
import sys
from contextlib import nullcontext
from typing import Any, Dict, Optional, Sequence, Union

from repro.graphs.csr import CSRGraph, EdgeList

__all__ = [
    "CHAOS_EXIT_CODE",
    "encode_payload",
    "decode_payload",
    "encode_stats",
    "execute_job",
    "worker_main",
]

#: Exit code used by chaos kills, so a post-mortem can tell an injected
#: death from a genuine crash.
CHAOS_EXIT_CODE = 86


def encode_payload(payload: Union[CSRGraph, EdgeList]) -> Dict[str, Any]:
    """Flatten a graph object into the arrays that cross the pipe."""
    if isinstance(payload, CSRGraph):
        return {
            "kind": "csr",
            "offsets": payload.offsets,
            "neighbors": payload.neighbors,
        }
    if isinstance(payload, EdgeList):
        return {
            "kind": "edges",
            "n": payload.num_vertices,
            "u": payload.u,
            "v": payload.v,
        }
    raise TypeError(
        f"solver payload must be CSRGraph or EdgeList, got {type(payload).__name__}"
    )


def decode_payload(encoded: Dict[str, Any]) -> Union[CSRGraph, EdgeList]:
    """Rebuild the graph object worker-side (constructors re-validate).

    ``kind="shared"`` payloads carry no arrays at all — just a segment
    name and a content fingerprint.  The graph is resolved through the
    per-process attachment registry (:mod:`repro.service.shared`): one
    zero-copy attach per worker, partition caches seeded from the shipped
    arrays, every later request reusing the same views.
    """
    if encoded["kind"] == "csr":
        return CSRGraph(encoded["offsets"], encoded["neighbors"])
    if encoded["kind"] == "edges":
        return EdgeList(encoded["n"], encoded["u"], encoded["v"])
    if encoded["kind"] == "shared":
        from repro.service.shared import attach_shared

        return attach_shared(encoded["name"], encoded.get("fingerprint")).payload
    raise ValueError(f"unknown payload kind {encoded['kind']!r}")


def encode_stats(stats) -> Dict[str, Any]:
    """RunStats → plain dict (the parent rebuilds the frozen dataclass)."""
    return {
        "algorithm": stats.algorithm,
        "n": stats.n,
        "m": stats.m,
        "work": stats.work,
        "depth": stats.depth,
        "steps": stats.steps,
        "rounds": stats.rounds,
        "prefix_size": stats.prefix_size,
        "aux": dict(stats.aux),
    }


def _solve_reply(job: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core.engines import solve
    from repro.robustness.budget import Budget

    payload = decode_payload(job["payload"])
    ranks = job.get("ranks")
    if ranks is None and job.get("ranks_shared"):
        # The registered bundle carries π; reuse the zero-copy view
        # instead of shipping the array with every request.
        from repro.service.shared import attach_shared

        ranks = attach_shared(job["payload"]["name"]).ranks
    deadline = job.get("deadline_seconds")
    budget_steps = job.get("budget_steps")
    budget: Optional[Budget] = None
    if deadline is not None or budget_steps is not None:
        budget = Budget(max_seconds=deadline, max_steps=budget_steps)

    sink = None
    tracer = None
    trace_path = job.get("trace_path")
    if trace_path:
        from repro.observability import JSONLSink, Tracer

        sink = JSONLSink(trace_path)
        tracer = Tracer(sink)

    fault = (job.get("chaos") or {}).get("fault")
    if fault:
        from repro.robustness.faults import ChaosInjector, FaultSpec

        injector = ChaosInjector(FaultSpec(**fault))
    else:
        injector = nullcontext()

    try:
        with injector:
            result = solve(
                job["problem"],
                payload,
                ranks,
                method=job["method"],
                guards=job.get("guards"),
                budget=budget,
                tracer=tracer,
                **(job.get("options") or {}),
            )
    finally:
        if sink is not None:
            sink.close()

    reply: Dict[str, Any] = {
        "id": job["id"],
        "ok": True,
        "kind": "matching" if job["problem"] in ("mm", "matching") else "mis",
        "status": result.status,
        "ranks": result.ranks,
        "stats": encode_stats(result.stats),
    }
    if reply["kind"] == "matching":
        reply["edge_u"] = result.edge_u
        reply["edge_v"] = result.edge_v
    return reply


def _call_reply(job: Dict[str, Any]) -> Dict[str, Any]:
    module = importlib.import_module(job["module"])
    fn = getattr(module, job["func"])
    value = fn(*(job.get("args") or ()), **(job.get("kwargs") or {}))
    return {"id": job["id"], "ok": True, "kind": "call", "value": value}


def execute_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job dict and return its reply dict (exceptions propagate)."""
    if job["problem"] == "call":
        return _call_reply(job)
    return _solve_reply(job)


def _error_reply(job: Dict[str, Any], exc: BaseException) -> Dict[str, Any]:
    return {
        "id": job.get("id"),
        "ok": False,
        "error_type": type(exc).__name__,
        "error": str(exc),
    }


def worker_main(conn, worker_id: int, sys_path: Sequence[str] = ()) -> None:
    """Child-process entry point: serve jobs from *conn* until shutdown.

    The loop exits on a ``None`` job (graceful shutdown) or a broken pipe
    (the parent died).  ``sys_path`` entries are prepended so ``"call"``
    jobs can import modules living outside the installed package (e.g.
    the ``scripts/`` directory).
    """
    for p in reversed([str(x) for x in sys_path]):
        if p not in sys.path:
            sys.path.insert(0, p)
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if job is None:
            break
        chaos = job.get("chaos") or {}
        if chaos.get("kill_point") == "pre":
            os._exit(CHAOS_EXIT_CODE)
        try:
            reply = execute_job(job)
        except KeyboardInterrupt:
            break
        except BaseException as exc:  # noqa: BLE001 — isolation boundary
            reply = _error_reply(job, exc)
        if chaos.get("kill_point") == "post":
            # The answer was computed but is lost with the process: the
            # retried attempt must reproduce it bit-for-bit.
            os._exit(CHAOS_EXIT_CODE)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    # Reap any shard executor this worker's parallel-vec runs spawned:
    # the executor's scratch/bundle segments are owned by this process
    # and must be unlinked before it exits.
    try:
        from repro.backends.executor import shutdown_executors

        shutdown_executors()
    except Exception:  # pragma: no cover - best-effort cleanup
        pass
    try:
        conn.close()
    except OSError:  # pragma: no cover - already closed
        pass
