"""Crash-isolated solver service: worker pool, deadlines, retries, breakers.

This subpackage turns the deterministic solver library into a resilient
batch service.  Requests (:class:`SolveRequest`) enter a bounded
admission queue and are executed in **subprocess workers** — a crash,
OOM kill, or hang of one request cannot take down the service or affect
siblings.  Failures are retried with exponential backoff; repeated
failures of one engine trip a per-engine :class:`CircuitBreaker` and
degrade requests along the registry's fallback chain
(``rootset-vec → rootset → sequential``), which is output-invariant
because every chain engine returns the bit-identical
lexicographically-first answer.

Layout:

========================  =============================================
:mod:`~repro.service.config`    :class:`ServiceConfig` / :class:`SolveRequest`
:mod:`~repro.service.worker`    child-process job loop + chaos kill hooks
:mod:`~repro.service.shared`    worker-side shared-segment attachments
:mod:`~repro.service.pool`      process/pipe lifecycle (:class:`WorkerPool`)
:mod:`~repro.service.breaker`   per-engine :class:`CircuitBreaker`
:mod:`~repro.service.stats`     :class:`ServiceStats` snapshots
:mod:`~repro.service.cache`     content-addressed :class:`ResultCache`
:mod:`~repro.service.service`   the scheduler (:class:`SolverService`)
:mod:`~repro.service.http`      asyncio network front door
                                (:class:`HTTPGateway`)
========================  =============================================

Front doors: :func:`repro.serve` and :func:`repro.solve_many`, plus the
``repro serve`` / ``repro batch`` CLI subcommands (``repro serve
--http HOST:PORT`` runs the network gateway).  See
``docs/robustness.md`` ("Serving" and "Network front door") for the
request lifecycle.  :mod:`repro.service.http` is imported lazily —
``from repro.service.http import HTTPGateway`` — so the batch service
carries no gateway baggage.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache, request_key
from repro.service.config import ServiceConfig, SolveRequest
from repro.service.pool import WorkerHandle, WorkerPool
from repro.service.service import ServiceFuture, SolverService, serve, solve_many
from repro.service.sessions import SessionInfo, SessionManager
from repro.service.stats import ServiceStats, StatsCollector

__all__ = [
    "CircuitBreaker",
    "ResultCache",
    "ServiceConfig",
    "ServiceFuture",
    "ServiceStats",
    "SessionInfo",
    "SessionManager",
    "SolveRequest",
    "SolverService",
    "StatsCollector",
    "WorkerHandle",
    "WorkerPool",
    "request_key",
    "serve",
    "solve_many",
]
