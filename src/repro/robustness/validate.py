"""Front-door input validation for the MIS and matching APIs.

The engines assume clean inputs (validated boundary, branch-free hot
loops), so anything malformed must be rejected *before* dispatch.  This
module concentrates the checks the two front doors
(:func:`repro.core.mis.api.maximal_independent_set`,
:func:`repro.core.matching.api.maximal_matching`) perform:

* :func:`check_ranks` — a priority array must be a genuine permutation of
  ``0..n-1``: right length, integer dtype (NaN-carrying float arrays are
  rejected here with a pointed message), no duplicates, no out-of-range
  entries.  Violations raise
  :class:`~repro.errors.InvalidOrderingError`.
* :func:`check_csr_graph` / :func:`check_edge_list` — structural CSR /
  edge-list invariants re-checked on the actual arrays, so a graph object
  whose arrays were corrupted *after* construction (the constructor
  validates too) still fails loudly with
  :class:`~repro.errors.InvalidGraphError` instead of producing a
  wrong-but-plausible answer.

All checks are O(n + m) single passes and run once per front-door call,
never inside engine rounds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidGraphError, InvalidOrderingError
from repro.graphs.csr import CSRGraph, EdgeList
from repro.util.validation import check_index_array

__all__ = [
    "check_ranks",
    "check_csr_graph",
    "check_csr_symmetric",
    "check_edge_list",
]


def check_ranks(ranks: object, n: int, name: str = "ranks") -> np.ndarray:
    """Validate that *ranks* is a permutation of ``0..n-1``.

    Returns the array as contiguous ``int64``.  Raises
    :class:`InvalidOrderingError` for wrong length, non-integer dtype
    (including NaN-poisoned float arrays), out-of-range entries, or
    duplicates.  Reuses :func:`repro.util.validation.check_index_array`
    for the shape/dtype/range legwork and rewraps its errors so the front
    door surfaces a single exception type.
    """
    a = np.asarray(ranks)
    if a.ndim == 1 and a.size != n:
        raise InvalidOrderingError(
            f"{name} must have length {n} (one priority per item), got {a.size}"
        )
    if a.size and np.issubdtype(a.dtype, np.floating) and np.isnan(a).any():
        raise InvalidOrderingError(f"{name} contains NaN; priorities must be a "
                                   f"permutation of 0..{n - 1}")
    try:
        a = check_index_array(a, n, name)
    except (TypeError, ValueError) as exc:
        raise InvalidOrderingError(str(exc)) from exc
    if np.unique(a).size != a.size:
        counts = np.bincount(a, minlength=n)
        dup = int(np.flatnonzero(counts > 1)[0])
        raise InvalidOrderingError(
            f"{name} is not a permutation: rank {dup} appears "
            f"{int(counts[dup])} times"
        )
    return a


def check_csr_graph(graph: CSRGraph) -> None:
    """Re-verify the CSR invariants on *graph*'s current arrays.

    The constructor already enforces these, but a fault (or a caller
    mutating ``graph.offsets`` in place) can break them afterwards; the
    front doors re-check so corruption is detected at the boundary.
    """
    n = graph.num_vertices
    offsets, neighbors = graph.offsets, graph.neighbors
    if offsets.ndim != 1 or offsets.size != n + 1:
        raise InvalidGraphError(
            f"offsets must have shape ({n + 1},), got {offsets.shape}"
        )
    if n >= 0 and (int(offsets[0]) != 0 or int(offsets[-1]) != neighbors.size):
        raise InvalidGraphError(
            f"offsets must start at 0 and end at the arc count "
            f"{neighbors.size}, got [{int(offsets[0])}, {int(offsets[-1])}]"
        )
    if offsets.size > 1 and np.any(np.diff(offsets) < 0):
        v = int(np.flatnonzero(np.diff(offsets) < 0)[0])
        raise InvalidGraphError(f"offsets are not monotone at vertex {v}")
    if neighbors.size:
        lo, hi = int(neighbors.min()), int(neighbors.max())
        if lo < 0 or hi >= n:
            raise InvalidGraphError(
                f"neighbor indices must lie in [0, {n}), found [{lo}, {hi}]"
            )
    if neighbors.size % 2 != 0:
        raise InvalidGraphError(
            f"undirected CSR must store each edge twice; arc count "
            f"{neighbors.size} is odd"
        )


def check_csr_symmetric(graph: CSRGraph) -> None:
    """Raise :class:`InvalidGraphError` unless *graph* is symmetric.

    O(m log m); this is the expensive half of CSR validation, so the front
    doors only run it under ``guards="full"``.
    """
    from repro.graphs.properties import is_symmetric

    if not is_symmetric(graph):
        raise InvalidGraphError(
            "undirected CSR graph is asymmetric: some arc (u, v) has no "
            "reverse arc (v, u)"
        )


def check_edge_list(edges: EdgeList) -> None:
    """Re-verify the canonical edge-list invariants on *edges*' arrays."""
    n = edges.num_vertices
    u, v = edges.u, edges.v
    if u.shape != v.shape or u.ndim != 1:
        raise InvalidGraphError(
            "endpoint arrays must be 1-D and equal length, got "
            f"{u.shape} and {v.shape}"
        )
    if u.size:
        if not bool(np.all(u < v)):
            e = int(np.flatnonzero(~(u < v))[0])
            raise InvalidGraphError(
                f"edge list must be canonical (u < v); edge {e} is "
                f"({int(u[e])}, {int(v[e])})"
            )
        lo = int(min(u.min(), v.min()))
        hi = int(max(u.max(), v.max()))
        if lo < 0 or hi >= n:
            raise InvalidGraphError(
                f"edge endpoints must lie in [0, {n}), found [{lo}, {hi}]"
            )
