"""Wall-clock and step budgets for engines and sweeps.

A :class:`Budget` is a small stateful meter handed to an engine (every
engine accepts ``budget=``) or to a sweep in :mod:`repro.bench.sweeps`.
Engines call :meth:`Budget.spend_steps` once per synchronous step (the
sequential baselines spend in chunks so the hot loop stays cheap); when
either limit is crossed the meter raises
:class:`~repro.errors.BudgetExceededError` and the run stops with all work
so far already charged to its machine.

One budget can be shared across several runs — the deadline is armed on
the first :meth:`start` and step spending accumulates — which is exactly
what a parameter sweep wants: the budget bounds the *sweep*, not each
point.  Use :meth:`reset` to reuse the object for an unrelated run.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import BudgetExceededError

__all__ = ["Budget"]


class Budget:
    """A reusable wall-clock / step budget.

    Parameters
    ----------
    max_seconds:
        Wall-clock allowance, measured from the first :meth:`start` call.
        ``None`` disables the time limit.
    max_steps:
        Total synchronous steps allowed across all runs charged to this
        budget.  ``None`` disables the step limit.
    clock:
        Injectable time source (seconds as float); tests substitute a fake
        clock to make deadline behavior deterministic.

    Examples
    --------
    >>> b = Budget(max_steps=3)
    >>> b.start().spend_steps(2)
    >>> b.steps_used
    2
    """

    __slots__ = ("max_seconds", "max_steps", "steps_used", "_clock", "_deadline")

    def __init__(
        self,
        max_seconds: Optional[float] = None,
        max_steps: Optional[int] = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_seconds is None and max_steps is None:
            raise ValueError("a Budget needs max_seconds and/or max_steps")
        if max_seconds is not None and not max_seconds > 0:
            raise ValueError(f"max_seconds must be positive, got {max_seconds!r}")
        if max_steps is not None and not max_steps > 0:
            raise ValueError(f"max_steps must be positive, got {max_steps!r}")
        self.max_seconds = None if max_seconds is None else float(max_seconds)
        self.max_steps = None if max_steps is None else int(max_steps)
        self.steps_used = 0
        self._clock = clock
        self._deadline: Optional[float] = None

    def start(self) -> "Budget":
        """Arm the wall-clock deadline (idempotent); returns ``self``.

        Engines call this on entry, so a budget shared across a sweep
        starts ticking at the first engine, not at construction time.
        """
        if self._deadline is None and self.max_seconds is not None:
            self._deadline = self._clock() + self.max_seconds
        return self

    def reset(self) -> "Budget":
        """Clear accumulated state so the budget can meter a fresh run."""
        self.steps_used = 0
        self._deadline = None
        return self

    @property
    def started(self) -> bool:
        """Whether the wall-clock deadline has been armed."""
        return self._deadline is not None or self.max_seconds is None

    def remaining_seconds(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` if no time limit)."""
        if self.max_seconds is None:
            return None
        if self._deadline is None:
            return self.max_seconds
        return self._deadline - self._clock()

    def remaining_steps(self) -> Optional[int]:
        """Steps left before the limit (``None`` if no step limit).

        Clamped at 0 once the budget is exhausted, so callers can size a
        follow-up run as ``min(want, budget.remaining_steps())`` without
        special-casing overdrawn budgets.
        """
        if self.max_steps is None:
            return None
        return max(self.max_steps - self.steps_used, 0)

    def check(self) -> None:
        """Raise :class:`BudgetExceededError` if either limit is crossed."""
        if self.max_steps is not None and self.steps_used > self.max_steps:
            raise BudgetExceededError(
                f"step budget exceeded: {self.steps_used} steps used, "
                f"limit {self.max_steps}"
            )
        if self._deadline is not None:
            now = self._clock()
            if now > self._deadline:
                over = now - (self._deadline - self.max_seconds)
                raise BudgetExceededError(
                    f"wall-clock budget exceeded: {over:.3f}s elapsed, "
                    f"limit {self.max_seconds:.3f}s"
                )

    def spend_steps(self, k: int = 1) -> None:
        """Charge *k* synchronous steps and enforce both limits.

        Engines with per-item loops spend in chunks (e.g. every 2048
        items) so budget enforcement never dominates the hot loop.
        """
        self.steps_used += int(k)
        self.check()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Budget(max_seconds={self.max_seconds}, max_steps={self.max_steps}, "
            f"steps_used={self.steps_used})"
        )
