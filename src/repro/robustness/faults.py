"""Seeded fault injection for chaos testing.

Two families of faults, matching the two ways state can go bad:

**Kernel faults** (injected live via :class:`ChaosInjector`) corrupt the
output of a frontier primitive mid-run — a dropped or duplicated frontier
vertex, a foreign vertex smuggled into a dedup result, a spurious parent
count decrement, an off-by-one cursor advance.  These model the silent
data races and logic slips the invariant guards exist to catch.

**Input faults** (:func:`corrupt_ranks`, :func:`corrupt_graph`) poison the
arrays handed to the front doors — NaN or duplicated priorities, truncated
or non-monotone CSR offsets, out-of-range neighbors.  These model bad
callers and bit rot, and must be rejected by front-door validation.

Everything is deterministic given :class:`FaultSpec` (kind, seed, strike
count), so a failing chaos case replays exactly.  The injector patches the
kernel's definition site *and* every engine module that imported the name
(engines bind kernels at import time), and restores all of them on exit.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = [
    "KERNEL_FAULTS",
    "RANK_FAULTS",
    "GRAPH_FAULTS",
    "FAULT_KINDS",
    "FaultSpec",
    "ChaosInjector",
    "corrupt_ranks",
    "corrupt_graph",
]

#: Faults injected into live kernel calls (fault kind → kernel wrapped).
KERNEL_FAULTS: Dict[str, str] = {
    "drop-frontier": "scatter_distinct",
    "dup-frontier": "scatter_distinct",
    "foreign-frontier": "scatter_distinct",
    "count-extra": "decrement_counts",
    "cursor-skip": "advance_cursors",
}

#: Faults applied to a priority array before the front door sees it.
RANK_FAULTS = ("rank-nan", "rank-dup", "rank-oob", "rank-short")

#: Faults applied to CSR graph arrays (constructor bypassed).
GRAPH_FAULTS = ("csr-truncate", "csr-nonmonotone", "csr-oob")

FAULT_KINDS = tuple(KERNEL_FAULTS) + RANK_FAULTS + GRAPH_FAULTS

#: Modules that bind frontier-kernel names at import time.  Patching only
#: ``repro.kernels`` would leave the engines calling the originals.
_PATCH_MODULES = (
    "repro.kernels",
    "repro.kernels.frontier",
    "repro.core.mis.rootset_vectorized",
    "repro.core.matching.rootset_vectorized",
)


@dataclass(frozen=True)
class FaultSpec:
    """One reproducible fault: what to break, where in the run, and how.

    ``after`` counts kernel invocations to pass through untouched before
    the single strike; sweeping it moves the fault across rounds.
    """

    kind: str
    seed: int = 0
    after: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")


class ChaosInjector:
    """Context manager that arms one kernel fault while active.

    >>> spec = FaultSpec("dup-frontier", seed=7, after=1)
    >>> with ChaosInjector(spec) as chaos:
    ...     run_engine()                        # doctest: +SKIP
    >>> chaos.fired                             # doctest: +SKIP
    True

    ``fired`` reports whether the strike actually corrupted anything (a
    strike on an empty frontier is a no-op); chaos harnesses use it to
    skip the detected-or-harmless assertion for faults that never landed.
    The fault strikes once — call ``after`` passthroughs, one corruption,
    then the kernel behaves normally again.
    """

    def __init__(self, spec: FaultSpec) -> None:
        if spec.kind not in KERNEL_FAULTS:
            raise ValueError(
                f"{spec.kind!r} is an input fault; apply it with "
                f"corrupt_ranks/corrupt_graph instead of ChaosInjector"
            )
        self.spec = spec
        self.fired = False
        self._calls = 0
        self._rng = np.random.default_rng(spec.seed)
        self._saved: List[Tuple[object, str, Callable]] = []

    # -- corruption payloads ----------------------------------------------

    def _strike_scatter(self, result: np.ndarray, domain: int) -> np.ndarray:
        kind = self.spec.kind
        if result.size == 0:
            return result
        j = int(self._rng.integers(result.size))
        if kind == "drop-frontier":
            self.fired = True
            return np.delete(result, j)
        if kind == "dup-frontier":
            self.fired = True
            return np.append(result, result[j])
        # foreign-frontier: replace one winner with a different id from the
        # domain — typically an already-decided vertex.
        if domain <= 1:
            return result
        out = result.copy()
        out[j] = (out[j] + 1) % domain
        self.fired = True
        return out

    def _strike_counts(
        self, counts: np.ndarray, zeros: np.ndarray
    ) -> np.ndarray:
        # One spurious decrement.  A count of 1 prematurely "completes" its
        # vertex, minting a false root; any other positive count plants
        # latent corruption that surfaces as a missing or early root later.
        ones = np.flatnonzero(counts == 1)
        pool = ones if ones.size else np.flatnonzero(counts > 1)
        if pool.size == 0:
            return zeros
        v = int(pool[self._rng.integers(pool.size)])
        counts[v] -= 1
        self.fired = True
        if counts[v] == 0:
            zeros = np.append(zeros, v)
        return zeros

    def _strike_cursor(
        self, cursors: np.ndarray, ends: np.ndarray, frontier: np.ndarray
    ) -> None:
        # Off-by-one advance: one cursor hops over the live slot it had
        # stopped on, silently deleting an edge that was never processed.
        frontier = np.asarray(frontier, dtype=np.int64)
        room = frontier[cursors[frontier] < ends[frontier]]
        if room.size == 0:
            return
        v = int(room[self._rng.integers(room.size)])
        cursors[v] += 1
        self.fired = True

    # -- wrapper construction ---------------------------------------------

    def _should_strike(self) -> bool:
        self._calls += 1
        return (not self.fired) and self._calls > self.spec.after

    def _make_wrapper(self, original: Callable) -> Callable:
        kind = self.spec.kind

        if KERNEL_FAULTS[kind] == "scatter_distinct":

            def wrapper(values, domain, machine=None, tag="dedup"):
                result = original(values, domain, machine, tag)
                if self._should_strike():
                    result = self._strike_scatter(result, domain)
                return result

        elif KERNEL_FAULTS[kind] == "decrement_counts":

            def wrapper(counts, targets, machine=None, tag="count-decrement"):
                zeros = original(counts, targets, machine, tag)
                if self._should_strike():
                    zeros = self._strike_counts(counts, zeros)
                return zeros

        else:  # advance_cursors

            def wrapper(
                cursors,
                ends,
                slots,
                status,
                live_value,
                frontier,
                machine=None,
                tag="cursor-advance",
            ):
                advances = original(
                    cursors, ends, slots, status, live_value, frontier,
                    machine, tag,
                )
                if self._should_strike():
                    self._strike_cursor(cursors, ends, frontier)
                return advances

        wrapper.__wrapped__ = original  # type: ignore[attr-defined]
        return wrapper

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "ChaosInjector":
        name = KERNEL_FAULTS[self.spec.kind]
        original = getattr(importlib.import_module("repro.kernels.frontier"), name)
        wrapper = self._make_wrapper(original)
        for mod_name in _PATCH_MODULES:
            mod = importlib.import_module(mod_name)
            if getattr(mod, name, None) is original:
                self._saved.append((mod, name, original))
                setattr(mod, name, wrapper)
        return self

    def __exit__(self, *exc_info: object) -> None:
        for mod, name, original in self._saved:
            setattr(mod, name, original)
        self._saved.clear()


def corrupt_ranks(ranks: np.ndarray, kind: str, seed: int = 0) -> np.ndarray:
    """Return a corrupted copy of a priority array (input never mutated)."""
    if kind not in RANK_FAULTS:
        raise ValueError(f"unknown rank fault {kind!r}; expected one of {RANK_FAULTS}")
    rng = np.random.default_rng(seed)
    n = ranks.size
    if kind == "rank-short":
        return ranks[: max(n - 1, 0)].copy()
    if n == 0:
        return ranks.copy()
    i = int(rng.integers(n))
    if kind == "rank-nan":
        out = ranks.astype(np.float64)
        out[i] = np.nan
        return out
    out = ranks.copy()
    if kind == "rank-dup":
        out[i] = out[(i + 1) % n]
    else:  # rank-oob
        out[i] = n if rng.integers(2) else -1
    return out


def corrupt_graph(graph: CSRGraph, kind: str, seed: int = 0) -> CSRGraph:
    """Return a CSR graph with corrupted arrays, bypassing the constructor.

    The constructor validates, so corruption is planted on a shell built
    with ``__new__`` — exactly the post-construction bit-rot scenario the
    front doors must re-check for.
    """
    if kind not in GRAPH_FAULTS:
        raise ValueError(
            f"unknown graph fault {kind!r}; expected one of {GRAPH_FAULTS}"
        )
    rng = np.random.default_rng(seed)
    offsets = graph.offsets.copy()
    neighbors = graph.neighbors.copy()
    if kind == "csr-truncate":
        # Lop slots off the tail: the offsets no longer cover the arcs.
        offsets[-1] -= 1 + int(rng.integers(max(neighbors.size, 1)))
    elif kind == "csr-nonmonotone":
        if offsets.size >= 3:
            v = 1 + int(rng.integers(offsets.size - 2))
            offsets[v] = offsets[v + 1] + 1 + int(rng.integers(3))
    else:  # csr-oob
        if neighbors.size:
            s = int(rng.integers(neighbors.size))
            neighbors[s] = graph.num_vertices + int(rng.integers(4))
    shell = object.__new__(CSRGraph)
    shell.offsets = offsets
    shell.neighbors = neighbors
    shell._edge_list = None
    return shell
