"""Robustness layer: fault injection, invariant guards, budgets, validation.

The determinism the paper proves is only as good as the state it runs on.
This package makes the reproduction *defensible* at runtime:

* :mod:`repro.robustness.faults` — seeded chaos injection into the
  frontier kernels and input arrays, to prove corruption is detected.
* :mod:`repro.robustness.guards` — per-round invariant checks
  (``off|cheap|full``) raising
  :class:`~repro.errors.InvariantViolationError`.
* :mod:`repro.robustness.budget` — wall-clock / step budgets raising
  :class:`~repro.errors.BudgetExceededError`.
* :mod:`repro.robustness.validate` — front-door input validation shared
  by the MIS and matching APIs.

See ``docs/robustness.md`` for the taxonomy and usage patterns.
"""

from repro.robustness.budget import Budget
from repro.robustness.faults import (
    FAULT_KINDS,
    GRAPH_FAULTS,
    KERNEL_FAULTS,
    RANK_FAULTS,
    ChaosInjector,
    FaultSpec,
    corrupt_graph,
    corrupt_ranks,
)
from repro.robustness.guards import (
    GUARD_MODES,
    MatchingInvariantGuard,
    MISInvariantGuard,
    matching_guard,
    mis_guard,
    resolve_guard_mode,
)
from repro.robustness.validate import (
    check_csr_graph,
    check_csr_symmetric,
    check_edge_list,
    check_ranks,
)

__all__ = [
    "Budget",
    "FAULT_KINDS",
    "KERNEL_FAULTS",
    "RANK_FAULTS",
    "GRAPH_FAULTS",
    "FaultSpec",
    "ChaosInjector",
    "corrupt_ranks",
    "corrupt_graph",
    "GUARD_MODES",
    "resolve_guard_mode",
    "MISInvariantGuard",
    "MatchingInvariantGuard",
    "mis_guard",
    "matching_guard",
    "check_ranks",
    "check_csr_graph",
    "check_csr_symmetric",
    "check_edge_list",
]
