"""Invariant-guarded execution: per-round corruption detectors.

The paper's headline experimental claim is that every schedule returns
*the same* MIS/matching for a fixed priority order.  Nothing about the
engines defends that property at runtime: a corrupted frontier kernel or a
flipped status byte would propagate to a wrong-but-plausible answer.  The
guards here are the runtime defense, with three modes:

``off``
    No checks, no overhead — the default everywhere.
``cheap``
    O(frontier) structural checks per round: frontier distinctness, status
    consistency of accepted/knocked items, strictly monotone undecided
    count, and a termination check that nothing is left undecided.
``full``
    Everything in ``cheap``, plus the per-round *priority* invariants —
    an accepted MIS root must have no accepted neighbor and no earlier
    undecided neighbor; a matched edge must dominate every earlier live
    edge at both endpoints — and a final O(n + m) lexicographically-first
    fixed-point check against the order.  Total added cost stays
    O(n + m) per run (each item's neighborhood is inspected once, at the
    round it is decided).

Any violated invariant raises
:class:`~repro.errors.InvariantViolationError` naming the engine and
round.  Guards are pure observers: they never mutate engine state.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.status import EDGE_DEAD, EDGE_LIVE, IN_SET, UNDECIDED
from repro.errors import EngineError, InvariantViolationError
from repro.graphs.csr import CSRGraph, EdgeList

__all__ = [
    "GUARD_MODES",
    "resolve_guard_mode",
    "MISInvariantGuard",
    "MatchingInvariantGuard",
    "mis_guard",
    "matching_guard",
]

#: Accepted values of every engine's ``guards=`` knob.
GUARD_MODES = ("off", "cheap", "full")


def resolve_guard_mode(mode: Optional[str]) -> str:
    """Normalize a ``guards=`` argument (``None`` means ``"off"``)."""
    if mode is None:
        return "off"
    if mode not in GUARD_MODES:
        raise EngineError(
            f"unknown guard mode {mode!r}; expected one of {GUARD_MODES}"
        )
    return mode


def _distinct(items: np.ndarray) -> bool:
    return np.unique(items).size == items.size


class MISInvariantGuard:
    """Round-by-round invariant checks for the greedy MIS engines.

    One guard instance observes one run.  Engines call
    :meth:`check_roots` just before accepting a step's root set,
    :meth:`check_step` after the knockouts, and :meth:`finalize` once the
    frontier drains.
    """

    __slots__ = ("graph", "ranks", "mode", "engine", "_undecided", "_round")

    def __init__(
        self, graph: CSRGraph, ranks: np.ndarray, mode: str, engine: str
    ) -> None:
        self.graph = graph
        self.ranks = ranks
        self.mode = mode
        self.engine = engine
        self._undecided = graph.num_vertices
        self._round = 0

    def _fail(self, message: str) -> None:
        raise InvariantViolationError(
            f"{self.engine}: round {self._round}: {message}"
        )

    def check_roots(self, status: np.ndarray, roots: np.ndarray) -> None:
        """Validate a root set about to be accepted (still undecided)."""
        roots = np.asarray(roots)
        if not _distinct(roots):
            self._fail("root frontier contains duplicate vertices")
        if roots.size and np.any(status[roots] != UNDECIDED):
            bad = int(roots[status[roots] != UNDECIDED][0])
            self._fail(f"root {bad} is already decided (status {int(status[bad])})")
        if self.mode == "full" and roots.size:
            own, nb = self.graph.gather(roots)
            if np.any(status[nb] == IN_SET):
                v = int(own[status[nb] == IN_SET][0])
                self._fail(f"root {v} has a neighbor already in the set")
            early = (status[nb] == UNDECIDED) & (self.ranks[nb] < self.ranks[own])
            if np.any(early):
                v = int(own[early][0])
                self._fail(
                    f"root {v} accepted while an earlier neighbor is undecided"
                )

    def check_step(
        self,
        status: np.ndarray,
        roots: np.ndarray,
        knocked: np.ndarray,
        *,
        knocked_distinct: bool = True,
    ) -> None:
        """Validate the state after a step's accepts and knockouts.

        *knocked_distinct* is the engine's claim; engines whose knockout
        stream legitimately repeats vertices (the prefix peelers) pass
        ``False`` and the guard deduplicates for its accounting instead of
        treating repeats as corruption.
        """
        roots = np.asarray(roots)
        knocked = np.asarray(knocked)
        if knocked_distinct:
            if not _distinct(knocked):
                self._fail("knocked frontier contains duplicate vertices")
        else:
            knocked = np.unique(knocked)
        if knocked.size and np.any(status[knocked] == UNDECIDED):
            bad = int(knocked[status[knocked] == UNDECIDED][0])
            self._fail(f"knocked vertex {bad} is still undecided after the step")
        decided = int(roots.size) + int(knocked.size)
        if decided <= 0:
            self._fail("step decided no vertices (no progress)")
        self._undecided -= decided
        if self._undecided < 0:
            self._fail(
                "more vertices decided than ever existed "
                "(undecided counter went negative)"
            )
        if self.mode == "full":
            actual = int(np.count_nonzero(status == UNDECIDED))
            if actual != self._undecided:
                self._fail(
                    f"undecided recount mismatch: counter says {self._undecided}, "
                    f"status array says {actual}"
                )
        self._round += 1

    def finalize(self, status: np.ndarray) -> None:
        """Validate the terminal state of the run."""
        undecided = int(np.count_nonzero(status == UNDECIDED))
        if undecided:
            v = int(np.flatnonzero(status == UNDECIDED)[0])
            self._fail(
                f"run terminated with {undecided} undecided vertices (first: {v})"
            )
        if self.mode == "full":
            from repro.core.mis.verify import is_lexicographically_first_mis

            if not is_lexicographically_first_mis(
                self.graph, self.ranks, status == IN_SET
            ):
                self._fail(
                    "output is not the lexicographically-first MIS for the order"
                )


class MatchingInvariantGuard:
    """Round-by-round invariant checks for the greedy matching engines."""

    __slots__ = ("edges", "ranks", "mode", "engine", "_live", "_round")

    def __init__(
        self, edges: EdgeList, ranks: np.ndarray, mode: str, engine: str
    ) -> None:
        self.edges = edges
        self.ranks = ranks
        self.mode = mode
        self.engine = engine
        self._live = edges.num_edges
        self._round = 0

    def _fail(self, message: str) -> None:
        raise InvariantViolationError(
            f"{self.engine}: round {self._round}: {message}"
        )

    def check_ready(
        self,
        status: np.ndarray,
        ready: np.ndarray,
        matched_v: np.ndarray,
    ) -> None:
        """Validate a ready set about to be matched (edges still live)."""
        ready = np.asarray(ready)
        if not _distinct(ready):
            self._fail("ready set contains duplicate edges")
        if ready.size == 0:
            return
        if np.any(status[ready] != EDGE_LIVE):
            bad = int(ready[status[ready] != EDGE_LIVE][0])
            self._fail(f"ready edge {bad} is not live (status {int(status[bad])})")
        ends = np.concatenate([self.edges.u[ready], self.edges.v[ready]])
        if not _distinct(ends):
            self._fail("two ready edges share an endpoint")
        if np.any(matched_v[ends]):
            w = int(ends[matched_v[ends]][0])
            self._fail(f"ready edge touches already-matched vertex {w}")
        if self.mode == "full":
            self._check_rank_minimal(status, ready)

    def _check_rank_minimal(self, status: np.ndarray, ready: np.ndarray) -> None:
        """Every earlier edge incident on a ready endpoint must be dead.

        This is the Lemma 5.2/5.3 invariant that the lazy-deletion cursors
        exist to maintain; an off-by-one cursor advance breaks exactly it.
        Each endpoint is matched at most once per run, so the total cost
        of these gathers is O(m).
        """
        from repro.kernels import frontier_gather

        inc_off, inc_eids = self.edges.incidence()
        ends = np.concatenate([self.edges.u[ready], self.edges.v[ready]])
        end_rank = np.concatenate([self.ranks[ready], self.ranks[ready]])
        vrank = np.empty(self.edges.num_vertices, dtype=np.int64)
        vrank[ends] = end_rank
        owner, slots = frontier_gather(inc_off, inc_eids, ends, need_owner=True)
        if slots.size == 0:
            return
        earlier = self.ranks[slots] < vrank[owner]
        bad = earlier & (status[slots] != EDGE_DEAD)
        if np.any(bad):
            e = int(slots[bad][0])
            self._fail(
                f"matched edge is dominated: earlier incident edge {e} "
                f"is not dead"
            )

    def check_step(
        self,
        status: np.ndarray,
        ready: np.ndarray,
        killed: np.ndarray,
        *,
        killed_distinct: bool = True,
    ) -> None:
        """Validate the state after a step's matches and lazy deletions."""
        ready = np.asarray(ready)
        killed = np.asarray(killed)
        if killed_distinct:
            if not _distinct(killed):
                self._fail("killed frontier contains duplicate edges")
        else:
            killed = np.unique(killed)
        if killed.size and np.any(status[killed] != EDGE_DEAD):
            bad = int(killed[status[killed] != EDGE_DEAD][0])
            self._fail(f"killed edge {bad} is not dead after the step")
        decided = int(ready.size) + int(killed.size)
        if decided <= 0:
            self._fail("step decided no edges (no progress)")
        self._live -= decided
        if self._live < 0:
            self._fail(
                "more edges decided than ever existed (live counter went negative)"
            )
        if self.mode == "full":
            actual = int(np.count_nonzero(status == EDGE_LIVE))
            if actual != self._live:
                self._fail(
                    f"live recount mismatch: counter says {self._live}, "
                    f"status array says {actual}"
                )
        self._round += 1

    def finalize(self, status: np.ndarray) -> None:
        """Validate the terminal state (after the final live→dead sweep)."""
        live = int(np.count_nonzero(status == EDGE_LIVE))
        if live:
            self._fail(f"run terminated with {live} edges still live")
        if self.mode == "full":
            from repro.core.matching.verify import (
                is_lexicographically_first_matching,
            )
            from repro.core.status import EDGE_MATCHED

            if not is_lexicographically_first_matching(
                self.edges, self.ranks, status == EDGE_MATCHED
            ):
                self._fail(
                    "output is not the lexicographically-first matching "
                    "for the order"
                )


def mis_guard(
    mode: Optional[str], graph: CSRGraph, ranks: np.ndarray, engine: str
) -> Optional[MISInvariantGuard]:
    """Build an MIS guard, or ``None`` when *mode* resolves to ``off``."""
    mode = resolve_guard_mode(mode)
    if mode == "off":
        return None
    return MISInvariantGuard(graph, ranks, mode, engine)


def matching_guard(
    mode: Optional[str], edges: EdgeList, ranks: np.ndarray, engine: str
) -> Optional[MatchingInvariantGuard]:
    """Build a matching guard, or ``None`` when *mode* resolves to ``off``."""
    mode = resolve_guard_mode(mode)
    if mode == "off":
        return None
    return MatchingInvariantGuard(edges, ranks, mode, engine)
