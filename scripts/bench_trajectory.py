#!/usr/bin/env python
"""Record the performance-tier trajectory into ``BENCH_6.json``.

Three measurements, on the "small"-tier paper workloads:

* **Engine ladder** — sequential pointer greedy vs single-process
  ``rootset-vec`` (cold and warm caches) vs ``parallel-vec`` at 1/2/4/8
  shard workers, with bit-exactness asserted against the sequential
  reference on every configuration and per-worker split / barrier-wait
  numbers pulled from ``stats.aux["parallel"]``.
* **Cold vs warm** — the memoized partition/incidence caches cleared per
  run vs reused, quantifying the gap that
  :meth:`SolverService.register_graph`'s precompute-at-registration
  closes for workers.
* **Service payload path** — median submit→result latency for pickled
  payloads vs registered shared-memory payloads on a live
  :class:`~repro.service.SolverService`.

A fourth measurement records the **gateway cache trajectory** into
``BENCH_8.json``: end-to-end HTTP latency through a live
:class:`~repro.service.http.HTTPGateway` for uncached solves (every
request a fresh content address, solved through the worker pool) vs
warm cache hits (one content address, answered from the
content-addressed result cache) vs the degraded serve-stale path.
Determinism makes all three responses byte-identical — the record
quantifies what that equivalence buys (warm hits are required to be
≥ 5× faster than uncached solves).

Speedup numbers are *honest wall clock on this machine*: ``meta.cpu_count``
records the core budget, and on a single-core container the parallel
tier cannot beat the single-process engine — the point of the record is
the split/barrier accounting and the payload-path latencies, which are
meaningful at any core count (see ``meta.caveat``).

A fifth measurement records the **dynamic-session trajectory** into
``BENCH_9.json``: incremental re-peel work under localized edge
mutations (:mod:`repro.dynamic`) on the paper-flavored workloads — a
triangular grid (planar, bounded degree) and a Holme–Kim power-law
cluster graph — plus the mutate round-trip latency of a live session
through the worker-pool service.  The committed claim: the cumulative
re-peel work is a vanishing fraction of from-scratch work
(``total_work_ratio`` well under 1) and the affected region per batch is
a vanishing fraction of the graph.

Usage:
    python scripts/bench_trajectory.py [output.json] [--smoke]
    python scripts/bench_trajectory.py --gateway-only   # BENCH_8.json only
    python scripts/bench_trajectory.py --dynamic-only   # BENCH_9.json only

``--smoke`` shrinks the workloads and repetition counts to run in a few
seconds (used by the tier-1 suite); the default tier matches
``BENCH_rootset.json``.  ``--gateway-only`` skips the engine ladder and
records just the gateway cache trajectory; ``--dynamic-only`` records
just the dynamic-session trajectory.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.backends import available_backends, shutdown_executors
from repro.bench.workloads import paper_random_graph, paper_rmat_graph
from repro.core.matching import (
    parallel_matching_vectorized,
    rootset_matching_vectorized,
    sequential_greedy_matching,
)
from repro.core.mis import (
    parallel_mis_vectorized,
    rootset_mis_vectorized,
    sequential_greedy_mis,
)
from repro.core.orderings import random_priorities
from repro.graphs.generators import uniform_random_graph
from repro.kernels import clear_partition_caches
from repro.pram.machine import null_machine
from repro.service import ServiceConfig, SolveRequest, SolverService

SEED = 20120215


def _best(fn, reps):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_problem(problem, graph, worker_counts, reps):
    """One problem's ladder: sequential → rootset-vec → parallel-vec × W."""
    if problem == "mis":
        payload = graph
        ranks = random_priorities(graph.num_vertices, seed=SEED)
        seq, vec, par = (
            sequential_greedy_mis,
            rootset_mis_vectorized,
            parallel_mis_vectorized,
        )
    else:
        payload = graph.edge_list()
        ranks = random_priorities(payload.num_edges, seed=SEED)
        seq, vec, par = (
            sequential_greedy_matching,
            rootset_matching_vectorized,
            parallel_matching_vectorized,
        )

    ref = seq(payload, ranks)
    seq_wall = _best(lambda: seq(payload, ranks), max(1, reps // 3))

    vec_cold = _best(
        lambda: (clear_partition_caches(),
                 vec(payload, ranks, machine=null_machine())),
        max(1, reps // 3),
    )
    check = vec(payload, ranks, machine=null_machine())
    assert np.array_equal(check.status, ref.status), f"{problem}: vec mismatch"
    vec_warm = _best(lambda: vec(payload, ranks, machine=null_machine()), reps)

    tiers = {}
    for workers in worker_counts:
        res = par(
            payload, ranks, workers=workers, min_fanout=0,
            machine=null_machine(),
        )
        assert np.array_equal(res.status, ref.status), (
            f"{problem}: parallel-vec x{workers} mismatch"
        )
        wall = _best(
            lambda: par(payload, ranks, workers=workers, min_fanout=0,
                        machine=null_machine()),
            reps,
        )
        aux = res.stats.aux["parallel"]
        tiers[str(workers)] = {
            "wall_s": wall,
            "speedup_vs_sequential": seq_wall / wall,
            "speedup_vs_rootset_vec_warm": vec_warm / wall,
            "fanout_steps": aux["fanout_steps"],
            "local_steps": aux["local_steps"],
            "split": aux["split"],
            "worker_busy_s": aux["worker_busy_s"],
            "barrier_wait_s": aux["barrier_wait_s"],
            "bit_identical_to_sequential": True,
        }
        shutdown_executors()

    return {
        "sequential_wall_s": seq_wall,
        "rootset_vec_wall_cold_s": vec_cold,
        "rootset_vec_wall_warm_s": vec_warm,
        "cold_warm_ratio": vec_cold / vec_warm,
        "parallel_vec": tiers,
    }


def _bench_service(graph, requests, smoke):
    """Median submit→result latency: pickled vs registered payloads."""
    ranks = random_priorities(graph.num_vertices, seed=SEED)

    def _run(svc):
        lat = []
        for _ in range(requests):
            t0 = time.perf_counter()
            svc.submit(SolveRequest(
                problem="mis", payload=graph, ranks=ranks,
                method="rootset-vec",
            )).result()
            lat.append(time.perf_counter() - t0)
        return lat

    svc = SolverService(ServiceConfig(workers=1)).start()
    try:
        _run(svc)  # warm the worker (imports, partition caches)
        pickled = _run(svc)
        svc.register_graph(graph, ranks)
        shared = _run(svc)
        svc.release_graph(graph)
    finally:
        svc.shutdown()
    return {
        "requests": requests,
        "pickled_median_s": float(np.median(pickled)),
        "shared_median_s": float(np.median(shared)),
        "shared_over_pickled": float(np.median(shared) / np.median(pickled)),
    }


def _bench_gateway(graph, requests):
    """End-to-end HTTP latency: uncached vs warm-hit vs serve-stale.

    Latency is measured as a real warm client sees it: request written
    and the full response body read off one persistent (keep-alive)
    connection.  The raw bytes are kept — client-side JSON decoding is
    the client's business, not gateway latency — and double as the
    byte-identity evidence for warm vs stale serving.
    """
    import http.client

    from repro.core.engines import engine_methods
    from repro.service.http import GatewayConfig, HTTPGateway

    ranks = random_priorities(graph.num_vertices, seed=SEED)
    gateway = HTTPGateway(
        config=GatewayConfig(port=0),
        workers=1,
        cache_entries=max(64, 2 * requests),
    )
    gateway.add_graph("bench", graph, ranks)

    with gateway:
        host, port = gateway.address
        conn = http.client.HTTPConnection(host, port, timeout=300)

        def _time(body, expect_source):
            payload = json.dumps(body).encode()
            t0 = time.perf_counter()
            conn.request(
                "POST", "/v1/solve", payload,
                {"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            raw = resp.read()
            wall = time.perf_counter() - t0
            assert resp.status == 200, f"gateway solve failed: {resp.status}"
            source = resp.headers.get("X-Repro-Cache")
            assert source == expect_source, (
                f"expected {expect_source}, served {source}"
            )
            return wall, raw

        # Warm the worker (imports, partition caches) off the record.
        _time({"graph": "bench", "seed": 10**6}, "miss")

        uncached = [
            _time({"graph": "bench", "seed": 10**6 + 1 + i}, "miss")[0]
            for i in range(requests)
        ]
        warm_samples = [
            _time({"graph": "bench"}, "hit") for _ in range(requests)
        ]
        # Serve-stale: open every MIS breaker so the backend is
        # unreachable, then hit the warmed entry through get_stale.
        breakers = [
            gateway.service.breaker("mis", m) for m in engine_methods("mis")
        ]
        for breaker in breakers:
            for _ in range(gateway.service.config.breaker_threshold):
                breaker.record_failure()
        gateway.service.cache.ttl_s = 1e-9  # expire the fresh path
        stale_samples = [
            _time({"graph": "bench"}, "stale") for _ in range(requests)
        ]
        gateway.service.cache.ttl_s = None
        for breaker in breakers:
            breaker.record_success()
        conn.close()

    warm = [wall for wall, _ in warm_samples]
    stale = [wall for wall, _ in stale_samples]
    bodies = {raw for _, raw in warm_samples} | {raw for _, raw in stale_samples}
    uncached_median = float(np.median(uncached))
    warm_median = float(np.median(warm))
    stale_median = float(np.median(stale))
    return {
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "requests": requests,
        "uncached_median_s": uncached_median,
        "warm_hit_median_s": warm_median,
        "stale_median_s": stale_median,
        "warm_speedup_vs_uncached": uncached_median / warm_median,
        "stale_speedup_vs_uncached": uncached_median / stale_median,
        "responses_byte_identical": len(bodies) == 1,
    }


def _bench_dynamic(smoke):
    """Incremental re-peel vs from-scratch under localized mutations.

    Each workload alternates *toggle* batches: odd batches delete a few
    random live edges, even batches re-insert the edges deleted by the
    previous batch — every mutation is localized to an existing
    neighborhood, the paper-flavored regime where the perturbed
    priority-DAG region stays geometrically small.  After the run the
    maintainer's result is asserted bit-identical to a from-scratch
    ``rootset-vec`` solve of the final graph, so the work-ratio numbers
    are for an *exact* maintenance scheme, not an approximation.
    """
    from repro.dynamic import IncrementalMatching, IncrementalMIS
    from repro.graphs.generators import (
        powerlaw_cluster_graph,
        triangular_grid_graph,
    )

    if smoke:
        workloads = {
            "tri_grid": triangular_grid_graph(20, 20),
            "powerlaw_cluster": powerlaw_cluster_graph(400, 4, 0.5, seed=SEED),
        }
        batches, per_batch = 8, 3
    else:
        workloads = {
            "tri_grid": triangular_grid_graph(64, 64),
            "powerlaw_cluster": powerlaw_cluster_graph(4000, 6, 0.5, seed=SEED),
        }
        batches, per_batch = 48, 4

    out = {"workloads": {}, "session": None}
    for wi, (name, graph) in enumerate(workloads.items()):
        el = graph.edge_list()
        entry = {
            "n": graph.num_vertices,
            "m": el.num_edges,
            "batches": batches,
            "edges_per_batch": per_batch,
            "problems": {},
        }
        for pi, problem in enumerate(("mis", "mm")):
            rng = np.random.default_rng((SEED, wi, pi))
            if problem == "mis":
                ranks = random_priorities(graph.num_vertices, seed=SEED)
                maintainer = IncrementalMIS(graph, ranks)
                items = graph.num_vertices
            else:
                maintainer = IncrementalMatching(el, seed=SEED)
                items = el.num_edges
            live = sorted(zip(el.u.tolist(), el.v.tolist()))
            affected = []
            pending = []
            t0 = time.perf_counter()
            for _ in range(batches):
                idx = rng.choice(len(live), size=per_batch, replace=False)
                deleted = [live[i] for i in sorted(idx.tolist())]
                stats = maintainer.apply_batch(
                    insertions=pending, deletions=deleted,
                )
                live = sorted(
                    (set(live) - set(deleted)) | set(map(tuple, pending))
                )
                pending = deleted
                affected.append(int(stats["affected"]))
            incremental_wall = time.perf_counter() - t0

            incremental = maintainer.result()
            if problem == "mis":
                final_graph = maintainer.graph()
                scratch_wall = _best(
                    lambda: rootset_mis_vectorized(
                        final_graph, maintainer.ranks, machine=null_machine(),
                    ),
                    3,
                )
                scratch = rootset_mis_vectorized(
                    final_graph, maintainer.ranks, machine=null_machine(),
                )
            else:
                final_el = maintainer.edge_list()
                final_ranks = maintainer.current_ranks()
                scratch_wall = _best(
                    lambda: rootset_matching_vectorized(
                        final_el, final_ranks, machine=null_machine(),
                    ),
                    3,
                )
                scratch = rootset_matching_vectorized(
                    final_el, final_ranks, machine=null_machine(),
                )
            assert np.array_equal(incremental.status, scratch.status), (
                f"{name}/{problem}: incremental result diverged from scratch"
            )

            dyn = maintainer.counters.aux()
            assert dyn["total_work_ratio"] < 1.0, (
                f"{name}/{problem}: localized mutations must re-peel less "
                f"than from-scratch work, got {dyn['total_work_ratio']}"
            )
            entry["problems"][problem] = {
                "total_work": dyn["total_work"],
                "total_scratch_work": dyn["total_scratch_work"],
                "total_work_ratio": dyn["total_work_ratio"],
                "mean_affected": float(np.mean(affected)),
                "max_affected": int(np.max(affected)),
                "mean_affected_fraction": float(np.mean(affected) / items),
                "incremental_batch_mean_s": incremental_wall / batches,
                "scratch_solve_s": scratch_wall,
                "bit_identical_to_scratch": True,
            }
        out["workloads"][name] = entry

    # Session mutate round-trip through the worker-pool service: the
    # maintainer state lives worker-side (keyed cache) with the parent
    # committing returned state, so a mutate pays one job dispatch.
    sess_graph = next(iter(workloads.values()))
    el = sess_graph.edge_list()
    svc = SolverService(ServiceConfig(workers=1)).start()
    try:
        info = svc.create_session(
            "mis", sess_graph,
            random_priorities(sess_graph.num_vertices, seed=SEED),
        )
        live = sorted(zip(el.u.tolist(), el.v.tolist()))
        rng = np.random.default_rng((SEED, 99))
        requests = 5 if smoke else 20
        lat = []
        pending = []
        for _ in range(requests):
            idx = rng.choice(len(live), size=2, replace=False)
            deleted = [live[i] for i in sorted(idx.tolist())]
            t0 = time.perf_counter()
            svc.mutate_session(
                info.session_id, insertions=pending, deletions=deleted,
            )
            lat.append(time.perf_counter() - t0)
            live = sorted((set(live) - set(deleted)) | set(map(tuple, pending)))
            pending = deleted
        final = svc.session_info(info.session_id)
        svc.close_session(info.session_id)
        out["session"] = {
            "n": sess_graph.num_vertices,
            "m": el.num_edges,
            "mutations": requests,
            "final_version": final.version,
            "mutate_median_s": float(np.median(lat)),
        }
    finally:
        svc.shutdown()
    return out


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in argv
    if smoke:
        argv.remove("--smoke")
    gateway_only = "--gateway-only" in argv
    if gateway_only:
        argv.remove("--gateway-only")
    dynamic_only = "--dynamic-only" in argv
    if dynamic_only:
        argv.remove("--dynamic-only")
    out_path = pathlib.Path(argv[0]) if argv else (
        pathlib.Path(__file__).resolve().parent.parent
        / ("BENCH_9.json" if dynamic_only
           else "BENCH_8.json" if gateway_only
           else "BENCH_6.json")
    )

    if smoke:
        workloads = {"random": uniform_random_graph(2000, 8000, seed=SEED)}
        worker_counts = (1, 2)
        reps, requests = 2, 3
    else:
        workloads = {
            "random": paper_random_graph("small"),
            "rmat": paper_rmat_graph("small"),
        }
        worker_counts = (1, 2, 4, 8)
        reps, requests = 9, 15

    if dynamic_only:
        record = {
            "meta": {
                "scale": "smoke" if smoke else "small",
                "numpy": np.__version__,
                "cpu_count": os.cpu_count(),
                "method": (
                    "alternating toggle batches (delete a few random live "
                    "edges, re-insert the previous batch's deletions) on a "
                    "triangular grid and a Holme-Kim power-law cluster "
                    "graph; work = affected items + scanned arcs per "
                    "re-peel, scratch_work = items + 2*arcs of a "
                    "from-scratch pass over the current graph; final state "
                    "asserted bit-identical to a from-scratch rootset-vec "
                    "solve; session block = median mutate round-trip "
                    "through a 1-worker SolverService session"
                ),
            },
            "dynamic": _bench_dynamic(smoke),
        }
        for name, entry in record["dynamic"]["workloads"].items():
            for problem, stats in entry["problems"].items():
                print(f"[bench] dynamic {name}/{problem}: "
                      f"work_ratio={stats['total_work_ratio']:.5f} "
                      f"affected~{stats['mean_affected']:.1f}"
                      f"/{entry['n' if problem == 'mis' else 'm']} "
                      f"batch={stats['incremental_batch_mean_s']*1e3:.2f}ms "
                      f"scratch={stats['scratch_solve_s']*1e3:.2f}ms")
        sess = record["dynamic"]["session"]
        print(f"[bench] dynamic session: mutate_median="
              f"{sess['mutate_median_s']*1e3:.2f}ms "
              f"({sess['mutations']} mutations, "
              f"final_version={sess['final_version']})")
        out_path.write_text(json.dumps(record, indent=1))
        print(f"[bench] wrote {out_path}")
        return 0

    if gateway_only:
        gw_graph = next(iter(workloads.values()))
        record = {
            "meta": {
                "scale": "smoke" if smoke else "small",
                "numpy": np.__version__,
                "cpu_count": os.cpu_count(),
                "method": (
                    "median end-to-end HTTP latency (request written to "
                    "full body read, one persistent loopback connection; "
                    "client-side JSON decode excluded), 1 worker; "
                    "uncached = fresh seed per request (content-address "
                    "miss, solved through the pool), warm = repeated "
                    "requests for one warmed content address (served "
                    "from the result cache plus the gateway's "
                    "encoded-response cache, so the hit skips both the "
                    "solve and re-serialization), stale = same address "
                    "via get_stale with every MIS breaker forced open; "
                    "warm/stale bodies asserted byte-identical"
                ),
            },
            "gateway": _bench_gateway(gw_graph, requests),
        }
        gw = record["gateway"]
        print(f"[bench] gateway: uncached={gw['uncached_median_s']:.4f}s "
              f"hit={gw['warm_hit_median_s']:.5f}s "
              f"stale={gw['stale_median_s']:.5f}s "
              f"(warm speedup {gw['warm_speedup_vs_uncached']:.1f}x)")
        if not smoke:
            # The committed claim (ISSUE acceptance): on the paper's
            # small workloads a warm hit beats an uncached solve >= 5x.
            # At smoke scale the solve is so cheap that HTTP framing
            # dominates both paths, so the ratio is not meaningful.
            assert gw["warm_speedup_vs_uncached"] >= 5.0, (
                "warm cache hits must be >= 5x faster than uncached solves"
            )
        out_path.write_text(json.dumps(record, indent=1))
        print(f"[bench] wrote {out_path}")
        return 0

    record = {
        "meta": {
            "scale": "smoke" if smoke else "small",
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "backends": available_backends(),
            "worker_counts": list(worker_counts),
            "method": (
                "wall clock = best of N interleaved runs; cold clears the "
                "memoized partition/incidence caches per run; parallel-vec "
                "forced to fan out every step (min_fanout=0); every "
                "configuration asserted bit-identical to sequential greedy"
            ),
            "caveat": (
                "speedups are honest wall clock on this machine; with "
                f"cpu_count={os.cpu_count()} the shard processes time-share "
                "cores, so parallel-vec cannot beat the single-process "
                "engine unless cpu_count exceeds the worker count"
            ),
        },
        "workloads": {},
        "service": None,
    }

    for name, graph in workloads.items():
        entry = {"n": graph.num_vertices, "m": graph.num_edges}
        for problem in ("mis", "mm"):
            entry[problem] = _bench_problem(problem, graph, worker_counts, reps)
            print(f"[bench] {name}/{problem}: "
                  f"seq={entry[problem]['sequential_wall_s']:.4f}s "
                  f"vec-warm={entry[problem]['rootset_vec_wall_warm_s']:.4f}s")
        record["workloads"][name] = entry

    svc_graph = next(iter(workloads.values()))
    record["service"] = _bench_service(svc_graph, requests, smoke)
    print(f"[bench] service: pickled={record['service']['pickled_median_s']:.4f}s "
          f"shared={record['service']['shared_median_s']:.4f}s")

    out_path.write_text(json.dumps(record, indent=1))
    print(f"[bench] wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
