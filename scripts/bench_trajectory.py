#!/usr/bin/env python
"""Record the performance-tier trajectory into ``BENCH_6.json``.

Three measurements, on the "small"-tier paper workloads:

* **Engine ladder** — sequential pointer greedy vs single-process
  ``rootset-vec`` (cold and warm caches) vs ``parallel-vec`` at 1/2/4/8
  shard workers, with bit-exactness asserted against the sequential
  reference on every configuration and per-worker split / barrier-wait
  numbers pulled from ``stats.aux["parallel"]``.
* **Cold vs warm** — the memoized partition/incidence caches cleared per
  run vs reused, quantifying the gap that
  :meth:`SolverService.register_graph`'s precompute-at-registration
  closes for workers.
* **Service payload path** — median submit→result latency for pickled
  payloads vs registered shared-memory payloads on a live
  :class:`~repro.service.SolverService`.

Speedup numbers are *honest wall clock on this machine*: ``meta.cpu_count``
records the core budget, and on a single-core container the parallel
tier cannot beat the single-process engine — the point of the record is
the split/barrier accounting and the payload-path latencies, which are
meaningful at any core count (see ``meta.caveat``).

Usage:
    python scripts/bench_trajectory.py [output.json] [--smoke]

``--smoke`` shrinks the workloads and repetition counts to run in a few
seconds (used by the tier-1 suite); the default tier matches
``BENCH_rootset.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.backends import available_backends, shutdown_executors
from repro.bench.workloads import paper_random_graph, paper_rmat_graph
from repro.core.matching import (
    parallel_matching_vectorized,
    rootset_matching_vectorized,
    sequential_greedy_matching,
)
from repro.core.mis import (
    parallel_mis_vectorized,
    rootset_mis_vectorized,
    sequential_greedy_mis,
)
from repro.core.orderings import random_priorities
from repro.graphs.generators import uniform_random_graph
from repro.kernels import clear_partition_caches
from repro.pram.machine import null_machine
from repro.service import ServiceConfig, SolveRequest, SolverService

SEED = 20120215


def _best(fn, reps):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_problem(problem, graph, worker_counts, reps):
    """One problem's ladder: sequential → rootset-vec → parallel-vec × W."""
    if problem == "mis":
        payload = graph
        ranks = random_priorities(graph.num_vertices, seed=SEED)
        seq, vec, par = (
            sequential_greedy_mis,
            rootset_mis_vectorized,
            parallel_mis_vectorized,
        )
    else:
        payload = graph.edge_list()
        ranks = random_priorities(payload.num_edges, seed=SEED)
        seq, vec, par = (
            sequential_greedy_matching,
            rootset_matching_vectorized,
            parallel_matching_vectorized,
        )

    ref = seq(payload, ranks)
    seq_wall = _best(lambda: seq(payload, ranks), max(1, reps // 3))

    vec_cold = _best(
        lambda: (clear_partition_caches(),
                 vec(payload, ranks, machine=null_machine())),
        max(1, reps // 3),
    )
    check = vec(payload, ranks, machine=null_machine())
    assert np.array_equal(check.status, ref.status), f"{problem}: vec mismatch"
    vec_warm = _best(lambda: vec(payload, ranks, machine=null_machine()), reps)

    tiers = {}
    for workers in worker_counts:
        res = par(
            payload, ranks, workers=workers, min_fanout=0,
            machine=null_machine(),
        )
        assert np.array_equal(res.status, ref.status), (
            f"{problem}: parallel-vec x{workers} mismatch"
        )
        wall = _best(
            lambda: par(payload, ranks, workers=workers, min_fanout=0,
                        machine=null_machine()),
            reps,
        )
        aux = res.stats.aux["parallel"]
        tiers[str(workers)] = {
            "wall_s": wall,
            "speedup_vs_sequential": seq_wall / wall,
            "speedup_vs_rootset_vec_warm": vec_warm / wall,
            "fanout_steps": aux["fanout_steps"],
            "local_steps": aux["local_steps"],
            "split": aux["split"],
            "worker_busy_s": aux["worker_busy_s"],
            "barrier_wait_s": aux["barrier_wait_s"],
            "bit_identical_to_sequential": True,
        }
        shutdown_executors()

    return {
        "sequential_wall_s": seq_wall,
        "rootset_vec_wall_cold_s": vec_cold,
        "rootset_vec_wall_warm_s": vec_warm,
        "cold_warm_ratio": vec_cold / vec_warm,
        "parallel_vec": tiers,
    }


def _bench_service(graph, requests, smoke):
    """Median submit→result latency: pickled vs registered payloads."""
    ranks = random_priorities(graph.num_vertices, seed=SEED)

    def _run(svc):
        lat = []
        for _ in range(requests):
            t0 = time.perf_counter()
            svc.submit(SolveRequest(
                problem="mis", payload=graph, ranks=ranks,
                method="rootset-vec",
            )).result()
            lat.append(time.perf_counter() - t0)
        return lat

    svc = SolverService(ServiceConfig(workers=1)).start()
    try:
        _run(svc)  # warm the worker (imports, partition caches)
        pickled = _run(svc)
        svc.register_graph(graph, ranks)
        shared = _run(svc)
        svc.release_graph(graph)
    finally:
        svc.shutdown()
    return {
        "requests": requests,
        "pickled_median_s": float(np.median(pickled)),
        "shared_median_s": float(np.median(shared)),
        "shared_over_pickled": float(np.median(shared) / np.median(pickled)),
    }


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in argv
    if smoke:
        argv.remove("--smoke")
    out_path = pathlib.Path(argv[0]) if argv else (
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_6.json"
    )

    if smoke:
        workloads = {"random": uniform_random_graph(2000, 8000, seed=SEED)}
        worker_counts = (1, 2)
        reps, requests = 2, 3
    else:
        workloads = {
            "random": paper_random_graph("small"),
            "rmat": paper_rmat_graph("small"),
        }
        worker_counts = (1, 2, 4, 8)
        reps, requests = 9, 15

    record = {
        "meta": {
            "scale": "smoke" if smoke else "small",
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "backends": available_backends(),
            "worker_counts": list(worker_counts),
            "method": (
                "wall clock = best of N interleaved runs; cold clears the "
                "memoized partition/incidence caches per run; parallel-vec "
                "forced to fan out every step (min_fanout=0); every "
                "configuration asserted bit-identical to sequential greedy"
            ),
            "caveat": (
                "speedups are honest wall clock on this machine; with "
                f"cpu_count={os.cpu_count()} the shard processes time-share "
                "cores, so parallel-vec cannot beat the single-process "
                "engine unless cpu_count exceeds the worker count"
            ),
        },
        "workloads": {},
        "service": None,
    }

    for name, graph in workloads.items():
        entry = {"n": graph.num_vertices, "m": graph.num_edges}
        for problem in ("mis", "mm"):
            entry[problem] = _bench_problem(problem, graph, worker_counts, reps)
            print(f"[bench] {name}/{problem}: "
                  f"seq={entry[problem]['sequential_wall_s']:.4f}s "
                  f"vec-warm={entry[problem]['rootset_vec_wall_warm_s']:.4f}s")
        record["workloads"][name] = entry

    svc_graph = next(iter(workloads.values()))
    record["service"] = _bench_service(svc_graph, requests, smoke)
    print(f"[bench] service: pickled={record['service']['pickled_median_s']:.4f}s "
          f"shared={record['service']['shared_median_s']:.4f}s")

    out_path.write_text(json.dumps(record, indent=1))
    print(f"[bench] wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
