#!/usr/bin/env python
"""Randomized differential fuzzer: hammer the determinism guarantee.

Generates random (graph family, size, order, schedule) configurations and
checks that every MIS/MM execution strategy returns the identical result.
This is the long-running companion to the hypothesis suites: run it for as
many trials as you have patience for; any mismatch prints a reproducer and
exits non-zero.

Usage:
    python scripts/fuzz_determinism.py [trials] [master_seed]
    python scripts/fuzz_determinism.py --faults [trials] [master_seed]
    python scripts/fuzz_determinism.py --service [trials] [master_seed]

``--faults`` switches to chaos mode: each trial injects one seeded fault —
either into the frontier kernels mid-run (guards="full" watching) or into
the graph/rank inputs (front-door validation watching) — and asserts the
fault is *detected or harmless*: every run must end in a typed error or in
a result bit-identical to the fault-free reference.  A run that completes
with a different answer is a silent wrong answer, the one outcome the
robustness layer exists to prevent.

``--service`` replays each trial through the crash-isolated worker pool
(:class:`repro.service.SolverService`) with worker kills *and* kernel
faults armed, and asserts the result the service returns — across
retries, worker restarts, and breaker-driven engine degradation — is
bit-identical to a clean in-process solve of the same instance.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.matching import (
    parallel_greedy_matching,
    prefix_greedy_matching,
    rootset_matching,
    rootset_matching_vectorized,
    sequential_greedy_matching,
)
from repro.core.mis import (
    parallel_greedy_mis,
    prefix_greedy_mis,
    rootset_mis,
    rootset_mis_vectorized,
    sequential_greedy_mis,
    theorem45_prefix_sizes,
)
from repro.core.orderings import random_priorities
from repro.extensions.reservations import reservation_matching, reservation_mis
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    rmat_graph,
    uniform_random_graph,
)
from repro.pram.machine import null_machine
from repro.core.matching.api import maximal_matching
from repro.core.mis.api import maximal_independent_set
from repro.errors import (
    InvalidGraphError,
    InvalidOrderingError,
    InvariantViolationError,
)
from repro.robustness import (
    GRAPH_FAULTS,
    RANK_FAULTS,
    ChaosInjector,
    FaultSpec,
    corrupt_graph,
    corrupt_ranks,
)

FAMILIES = {
    "uniform": lambda rng: (
        lambda n: uniform_random_graph(
            n, int(rng.integers(0, min(9000, n * (n - 1) // 2) + 1)), seed=rng
        )
    )(int(rng.integers(2, 3000))),
    "rmat": lambda rng: rmat_graph(
        int(rng.integers(4, 12)), int(rng.integers(0, 6000)), seed=rng
    ),
    "grid": lambda rng: grid_graph(int(rng.integers(1, 40)), int(rng.integers(1, 40))),
    "cycle": lambda rng: cycle_graph(int(rng.integers(3, 2000))),
    "hypercube": lambda rng: hypercube_graph(int(rng.integers(0, 10))),
    "bipartite": lambda rng: complete_bipartite_graph(
        int(rng.integers(1, 40)), int(rng.integers(1, 40))
    ),
    "ba": lambda rng: barabasi_albert_graph(
        int(rng.integers(10, 400)), int(rng.integers(1, 5)), seed=rng
    ),
}


def check_instance(rng) -> None:
    family = list(FAMILIES)[int(rng.integers(0, len(FAMILIES)))]
    g = FAMILIES[family](rng)
    n = g.num_vertices
    ranks = random_priorities(n, rng)
    ref = sequential_greedy_mis(g, ranks, machine=null_machine()).status
    variants = {
        "parallel": parallel_greedy_mis(g, ranks, machine=null_machine()).status,
        "rootset": rootset_mis(g, ranks, machine=null_machine()).status,
        "rootset-vec": rootset_mis_vectorized(
            g, ranks, machine=null_machine()
        ).status,
        "prefix-k": prefix_greedy_mis(
            g, ranks, prefix_size=int(rng.integers(1, n + 1)),
            machine=null_machine(),
        ).status,
        "thm45": prefix_greedy_mis(
            g, ranks, prefix_sizes=theorem45_prefix_sizes(n, g.max_degree()) or [1],
            machine=null_machine(),
        ).status,
        "reservations": reservation_mis(
            g, ranks, granularity=int(rng.integers(1, n + 1)),
            machine=null_machine(),
        ).status,
    }
    for name, status in variants.items():
        if not np.array_equal(status, ref):
            raise AssertionError(
                f"MIS mismatch: family={family} n={n} m={g.num_edges} "
                f"engine={name}"
            )
    el = g.edge_list()
    m = el.num_edges
    eranks = random_priorities(m, rng)
    mref = sequential_greedy_matching(el, eranks, machine=null_machine()).status
    mm_variants = {
        "parallel": parallel_greedy_matching(el, eranks, machine=null_machine()).status,
        "rootset": rootset_matching(el, eranks, machine=null_machine()).status,
        "rootset-vec": rootset_matching_vectorized(
            el, eranks, machine=null_machine()
        ).status,
        "prefix-k": prefix_greedy_matching(
            el, eranks, prefix_size=int(rng.integers(1, m + 2)),
            machine=null_machine(),
        ).status,
        "reservations": reservation_matching(
            el, eranks, granularity=int(rng.integers(1, m + 2)),
            machine=null_machine(),
        ).status,
    }
    for name, status in mm_variants.items():
        if not np.array_equal(status, mref):
            raise AssertionError(
                f"MM mismatch: family={family} n={n} m={m} engine={name}"
            )


# Kernel faults reaching each vectorized engine: advance_cursors only runs
# in the matching scan, decrement_counts only in the MIS parent counts.
_MIS_KERNEL_FAULTS = ("drop-frontier", "dup-frontier", "foreign-frontier",
                      "count-extra")
_MM_KERNEL_FAULTS = ("drop-frontier", "dup-frontier", "foreign-frontier",
                     "cursor-skip")
# Crash signatures a corrupted frontier may produce before a guard round
# sees it — loud, typed, and therefore acceptable (not silent).
_LOUD_CRASHES = (IndexError, ValueError, FloatingPointError, OverflowError)


def _fault_graph(rng):
    """A small non-trivial instance (chaos needs edges to corrupt)."""
    for _ in range(20):
        family = list(FAMILIES)[int(rng.integers(0, len(FAMILIES)))]
        g = FAMILIES[family](rng)
        if g.num_vertices >= 2 and g.num_edges >= 1:
            return family, g
    return "cycle", cycle_graph(8)


def check_fault_instance(rng, tally) -> None:
    """One chaos trial: inject a fault, demand detected-or-harmless."""
    family, g = _fault_graph(rng)
    alg = "mis" if rng.integers(0, 2) == 0 else "mm"
    site = ("kernel", "rank", "graph")[int(rng.integers(0, 3))]
    label = f"family={family} n={g.num_vertices} m={g.num_edges} alg={alg}"

    if site == "kernel":
        kinds = _MIS_KERNEL_FAULTS if alg == "mis" else _MM_KERNEL_FAULTS
        spec = FaultSpec(
            kind=kinds[int(rng.integers(0, len(kinds)))],
            seed=int(rng.integers(0, 2**31)),
            after=int(rng.integers(0, 6)),
        )
        if alg == "mis":
            ranks = random_priorities(g.num_vertices, rng)
            ref = sequential_greedy_mis(g, ranks, machine=null_machine()).status
            run = lambda: rootset_mis_vectorized(
                g, ranks, machine=null_machine(), guards="full",
                use_cache=False,
            ).status
        else:
            el = g.edge_list()
            ranks = random_priorities(el.num_edges, rng)
            ref = sequential_greedy_matching(
                el, ranks, machine=null_machine()
            ).status
            run = lambda: rootset_matching_vectorized(
                el, ranks, machine=null_machine(), guards="full",
                use_cache=False,
            ).status
        try:
            with ChaosInjector(spec) as chaos:
                status = run()
        except InvariantViolationError:
            tally["detected"] += 1
            return
        except _LOUD_CRASHES:
            tally["crashed"] += 1
            return
        if not chaos.fired:
            tally["not-fired"] += 1
            return
        if np.array_equal(status, ref):
            tally["harmless"] += 1
            return
        raise AssertionError(
            f"SILENT WRONG ANSWER: {label} fault={spec.kind} "
            f"after={spec.after} seed={spec.seed}"
        )

    if site == "rank":
        kind = RANK_FAULTS[int(rng.integers(0, len(RANK_FAULTS)))]
        if alg == "mis":
            bad = corrupt_ranks(
                random_priorities(g.num_vertices, rng), kind,
                seed=int(rng.integers(0, 2**31)),
            )
            call = lambda: maximal_independent_set(g, bad, method="rootset-vec")
        else:
            el = g.edge_list()
            bad = corrupt_ranks(
                random_priorities(el.num_edges, rng), kind,
                seed=int(rng.integers(0, 2**31)),
            )
            call = lambda: maximal_matching(el, bad, method="rootset-vec")
        try:
            call()
        except InvalidOrderingError:
            tally["detected"] += 1
            return
        raise AssertionError(
            f"UNDETECTED INPUT FAULT: {label} fault={kind} "
            "(front door accepted a corrupted ordering)"
        )

    kind = GRAPH_FAULTS[int(rng.integers(0, len(GRAPH_FAULTS)))]
    bad = corrupt_graph(g, kind, seed=int(rng.integers(0, 2**31)))
    call = (
        (lambda: maximal_independent_set(bad, method="rootset-vec"))
        if alg == "mis"
        else (lambda: maximal_matching(bad, method="rootset-vec"))
    )
    try:
        call()
    except InvalidGraphError:
        tally["detected"] += 1
        return
    raise AssertionError(
        f"UNDETECTED INPUT FAULT: {label} fault={kind} "
        "(front door accepted a corrupted graph)"
    )


def check_service_instance(rng, svc, tally) -> None:
    """One worker-pool trial: chaos-laden service run vs clean in-process."""
    from repro.service import SolveRequest

    family, g = _fault_graph(rng)
    alg = "mis" if rng.integers(0, 2) == 0 else "mm"
    seed = int(rng.integers(0, 2**31))
    if alg == "mis":
        payload = g
        ref = maximal_independent_set(g, method="rootset-vec", seed=seed)
    else:
        payload = g.edge_list()
        ref = maximal_matching(payload, method="rootset-vec", seed=seed)
    res = svc.solve(
        SolveRequest(alg if alg == "mis" else "mm", payload,
                     options={"seed": seed}),
        timeout=300,
    )
    if not np.array_equal(res.status, ref.status):
        raise AssertionError(
            f"SERVICE MISMATCH: family={family} n={g.num_vertices} "
            f"m={g.num_edges} alg={alg} seed={seed} "
            f"attempts={res.stats.aux['service']['attempts']}"
        )
    aux = res.stats.aux["service"]
    tally["retried" if aux["retries"] else "clean"] += 1
    if res.stats.aux.get("degraded"):
        tally["degraded"] += 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Differential determinism fuzzer (optionally with "
        "fault injection)."
    )
    parser.add_argument("trials", nargs="?", type=int, default=100)
    parser.add_argument("master_seed", nargs="?", type=int, default=0)
    parser.add_argument(
        "--faults", action="store_true",
        help="chaos mode: inject one seeded fault per trial and assert "
        "every fault is detected or harmless (no silent wrong answers)",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="service mode: replay each trial through the crash-isolated "
        "worker pool under worker kills + kernel faults and assert the "
        "result is bit-identical to a clean in-process solve",
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="worker-pool size for --service")
    args = parser.parse_args(argv)
    if args.faults and args.service:
        parser.error("--faults and --service are separate modes")
    trials, master_seed = args.trials, args.master_seed
    t0 = time.time()
    master = np.random.default_rng(master_seed)
    tally = {"detected": 0, "harmless": 0, "crashed": 0, "not-fired": 0,
             "clean": 0, "retried": 0, "degraded": 0}
    svc = None
    if args.service:
        from repro.resilience import ChaosScenario
        from repro.service import SolverService

        scenario = ChaosScenario(
            name="fuzz-service",
            description="differential service replay under kills + faults",
            workers=args.workers,
            max_retries=8,
            kill_probability=0.15,
            fault_probability=0.15,
            seed=master_seed,
        )
        svc = SolverService(scenario.service_config()).start()
    try:
        for trial in range(trials):
            rng = np.random.default_rng(master.integers(0, 2**63))
            try:
                if args.service:
                    check_service_instance(rng, svc, tally)
                elif args.faults:
                    check_fault_instance(rng, tally)
                else:
                    check_instance(rng)
            except AssertionError as exc:
                print(f"FAIL at trial {trial} (master seed {master_seed}): {exc}")
                return 1
            if (trial + 1) % 20 == 0:
                print(f"  {trial + 1}/{trials} instances ok "
                      f"({time.time() - t0:.1f}s)")
    finally:
        if svc is not None:
            stats = svc.stats()
            svc.shutdown()
    if args.service:
        print(f"all {trials} service replays bit-identical "
              f"({time.time() - t0:.1f}s): "
              f"clean={tally['clean']}, retried={tally['retried']}, "
              f"degraded={tally['degraded']}; "
              f"crashes={stats.worker_crashes}, retries={stats.retries}, "
              f"breaker trips={stats.breaker_trips}")
    elif args.faults:
        print(f"all {trials} injected faults detected or harmless "
              f"({time.time() - t0:.1f}s): " +
              ", ".join(f"{k}={v}" for k, v in tally.items()
                        if k in ("detected", "harmless", "crashed", "not-fired")))
    else:
        print(f"all {trials} instances deterministic across every engine "
              f"({time.time() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
