#!/usr/bin/env python
"""Randomized differential fuzzer: hammer the determinism guarantee.

Generates random (graph family, size, order, schedule) configurations and
checks that every MIS/MM execution strategy returns the identical result.
This is the long-running companion to the hypothesis suites: run it for as
many trials as you have patience for; any mismatch prints a reproducer and
exits non-zero.

Usage:
    python scripts/fuzz_determinism.py [trials] [master_seed]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core.matching import (
    parallel_greedy_matching,
    prefix_greedy_matching,
    rootset_matching,
    rootset_matching_vectorized,
    sequential_greedy_matching,
)
from repro.core.mis import (
    parallel_greedy_mis,
    prefix_greedy_mis,
    rootset_mis,
    rootset_mis_vectorized,
    sequential_greedy_mis,
    theorem45_prefix_sizes,
)
from repro.core.orderings import random_priorities
from repro.extensions.reservations import reservation_matching, reservation_mis
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    rmat_graph,
    uniform_random_graph,
)
from repro.pram.machine import null_machine

FAMILIES = {
    "uniform": lambda rng: (
        lambda n: uniform_random_graph(
            n, int(rng.integers(0, min(9000, n * (n - 1) // 2) + 1)), seed=rng
        )
    )(int(rng.integers(2, 3000))),
    "rmat": lambda rng: rmat_graph(
        int(rng.integers(4, 12)), int(rng.integers(0, 6000)), seed=rng
    ),
    "grid": lambda rng: grid_graph(int(rng.integers(1, 40)), int(rng.integers(1, 40))),
    "cycle": lambda rng: cycle_graph(int(rng.integers(3, 2000))),
    "hypercube": lambda rng: hypercube_graph(int(rng.integers(0, 10))),
    "bipartite": lambda rng: complete_bipartite_graph(
        int(rng.integers(1, 40)), int(rng.integers(1, 40))
    ),
    "ba": lambda rng: barabasi_albert_graph(
        int(rng.integers(10, 400)), int(rng.integers(1, 5)), seed=rng
    ),
}


def check_instance(rng) -> None:
    family = list(FAMILIES)[int(rng.integers(0, len(FAMILIES)))]
    g = FAMILIES[family](rng)
    n = g.num_vertices
    ranks = random_priorities(n, rng)
    ref = sequential_greedy_mis(g, ranks, machine=null_machine()).status
    variants = {
        "parallel": parallel_greedy_mis(g, ranks, machine=null_machine()).status,
        "rootset": rootset_mis(g, ranks, machine=null_machine()).status,
        "rootset-vec": rootset_mis_vectorized(
            g, ranks, machine=null_machine()
        ).status,
        "prefix-k": prefix_greedy_mis(
            g, ranks, prefix_size=int(rng.integers(1, n + 1)),
            machine=null_machine(),
        ).status,
        "thm45": prefix_greedy_mis(
            g, ranks, prefix_sizes=theorem45_prefix_sizes(n, g.max_degree()) or [1],
            machine=null_machine(),
        ).status,
        "reservations": reservation_mis(
            g, ranks, granularity=int(rng.integers(1, n + 1)),
            machine=null_machine(),
        ).status,
    }
    for name, status in variants.items():
        if not np.array_equal(status, ref):
            raise AssertionError(
                f"MIS mismatch: family={family} n={n} m={g.num_edges} "
                f"engine={name}"
            )
    el = g.edge_list()
    m = el.num_edges
    eranks = random_priorities(m, rng)
    mref = sequential_greedy_matching(el, eranks, machine=null_machine()).status
    mm_variants = {
        "parallel": parallel_greedy_matching(el, eranks, machine=null_machine()).status,
        "rootset": rootset_matching(el, eranks, machine=null_machine()).status,
        "rootset-vec": rootset_matching_vectorized(
            el, eranks, machine=null_machine()
        ).status,
        "prefix-k": prefix_greedy_matching(
            el, eranks, prefix_size=int(rng.integers(1, m + 2)),
            machine=null_machine(),
        ).status,
        "reservations": reservation_matching(
            el, eranks, granularity=int(rng.integers(1, m + 2)),
            machine=null_machine(),
        ).status,
    }
    for name, status in mm_variants.items():
        if not np.array_equal(status, mref):
            raise AssertionError(
                f"MM mismatch: family={family} n={n} m={m} engine={name}"
            )


def main(argv=None) -> int:
    args = argv or sys.argv[1:]
    trials = int(args[0]) if args else 100
    master_seed = int(args[1]) if len(args) > 1 else 0
    t0 = time.time()
    master = np.random.default_rng(master_seed)
    for trial in range(trials):
        rng = np.random.default_rng(master.integers(0, 2**63))
        try:
            check_instance(rng)
        except AssertionError as exc:
            print(f"FAIL at trial {trial} (master seed {master_seed}): {exc}")
            return 1
        if (trial + 1) % 20 == 0:
            print(f"  {trial + 1}/{trials} instances ok "
                  f"({time.time() - t0:.1f}s)")
    print(f"all {trials} instances deterministic across every engine "
          f"({time.time() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
