#!/usr/bin/env python
"""Record the root-set engine ablation into ``BENCH_rootset.json``.

Measures, on both "small"-tier paper workloads (the uniform random graph
and the rMat graph):

* pointer-level vs vectorized root-set MIS and MM — best-of-N wall clock
  (interleaved to share thermal/cache conditions), charged work, steps,
  and bit-exactness of the result against the sequential greedy reference;
* the vectorized engines cold (partition/incidence caches cleared every
  run) and warm (memoized builders hit, the steady state of a sweep);
* the ``np.minimum.at`` vs :func:`repro.kernels.sorted_segment_min`
  microbenchmark behind the ``parallel_greedy_mis`` peel step.

Usage:
    python scripts/bench_rootset.py [output.json]
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.bench.workloads import paper_random_graph, paper_rmat_graph
from repro.core.matching import (
    rootset_matching,
    rootset_matching_vectorized,
    sequential_greedy_matching,
)
from repro.core.mis import (
    rootset_mis,
    rootset_mis_vectorized,
    sequential_greedy_mis,
)
from repro.core.orderings import random_priorities
from repro.kernels import clear_partition_caches, sorted_segment_min
from repro.pram.machine import Machine, null_machine

PTR_REPS = 5
VEC_REPS = 25
SEED = 20120215


def _best(fn, reps):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_pair(label, ptr_fn, vec_fn, ref_status):
    """Interleaved best-of-N for one (pointer, vectorized) engine pair."""
    ptr_machine, vec_machine = Machine(), Machine()
    ptr_res = ptr_fn(ptr_machine)
    vec_res = vec_fn(vec_machine)
    assert np.array_equal(ptr_res.status, ref_status), f"{label}: pointer mismatch"
    assert np.array_equal(vec_res.status, ref_status), f"{label}: vectorized mismatch"
    assert ptr_res.stats.steps == vec_res.stats.steps, f"{label}: step mismatch"

    cold = _best(
        lambda: (clear_partition_caches(), vec_fn(null_machine())), VEC_REPS // 3
    )
    # Interleave so both engines see the same machine conditions.
    ptr_best, vec_best = float("inf"), float("inf")
    for _ in range(PTR_REPS):
        t0 = time.perf_counter()
        ptr_fn(null_machine())
        ptr_best = min(ptr_best, time.perf_counter() - t0)
        for _ in range(VEC_REPS // PTR_REPS):
            t0 = time.perf_counter()
            vec_fn(null_machine())
            vec_best = min(vec_best, time.perf_counter() - t0)
    return {
        "pointer_wall_s": ptr_best,
        "vectorized_wall_warm_s": vec_best,
        "vectorized_wall_cold_s": cold,
        "speedup_warm": ptr_best / vec_best,
        "speedup_cold": ptr_best / cold,
        "pointer_work": ptr_res.stats.work,
        "vectorized_work": vec_res.stats.work,
        "steps": vec_res.stats.steps,
        "status_matches_sequential": True,
    }


def _minimum_scatter_micro(graph, ranks):
    """Satellite: the ``parallel_greedy_mis`` peel-step min formulations.

    Times the buffered-or-indexed ``np.minimum.at`` scatter, the
    boundary-scan + ``np.minimum.reduceat`` segmented reduction, and the
    :func:`repro.kernels.sorted_segment_min` kernel (which dispatches to
    whichever formulation the running numpy makes faster).
    """
    from repro.kernels.frontier import _FAST_UFUNC_AT, _reduceat_segment_min

    src, dst = graph.arcs()  # CSR order: src non-decreasing, as in the peel
    vals = ranks[dst]
    n = graph.num_vertices

    def with_at():
        out = np.full(n, n, dtype=np.int64)
        np.minimum.at(out, src, vals)
        return out

    def with_reduceat():
        out = np.full(n, n, dtype=np.int64)
        _reduceat_segment_min(src, vals, out)
        return out

    def with_kernel():
        out = np.full(n, n, dtype=np.int64)
        sorted_segment_min(src, vals, out)
        return out

    assert np.array_equal(with_at(), with_reduceat())
    assert np.array_equal(with_at(), with_kernel())
    return {
        "arcs": int(src.size),
        "minimum_at_s": _best(with_at, 9),
        "reduceat_s": _best(with_reduceat, 9),
        "kernel_s": _best(with_kernel, 9),
        "kernel_path": "minimum.at" if _FAST_UFUNC_AT else "reduceat",
        "numpy_has_fast_ufunc_at": _FAST_UFUNC_AT,
    }


def main(argv=None) -> int:
    args = argv or sys.argv[1:]
    out_path = pathlib.Path(args[0]) if args else (
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_rootset.json"
    )
    payload = {
        "scale": "small",
        "method": (
            f"wall clock = best of {PTR_REPS} (pointer) / {VEC_REPS} "
            "(vectorized) interleaved runs; cold clears the memoized "
            "partition/incidence caches each run, warm reuses them "
            "(the steady state of a parameter sweep)"
        ),
        "numpy": np.__version__,
        "workloads": {},
    }
    for name, graph in (
        ("random", paper_random_graph("small")),
        ("rmat", paper_rmat_graph("small")),
    ):
        n = graph.num_vertices
        el = graph.edge_list()
        m = el.num_edges
        vranks = random_priorities(n, seed=SEED)
        eranks = random_priorities(m, seed=SEED + 1)
        mis_ref = sequential_greedy_mis(graph, vranks, machine=null_machine()).status
        mm_ref = sequential_greedy_matching(
            el, eranks, machine=null_machine()
        ).status
        entry = {
            "n": n,
            "m": m,
            "mis": _bench_pair(
                f"mis/{name}",
                lambda mach: rootset_mis(graph, vranks, machine=mach),
                lambda mach: rootset_mis_vectorized(graph, vranks, machine=mach),
                mis_ref,
            ),
            "mm": _bench_pair(
                f"mm/{name}",
                lambda mach: rootset_matching(el, eranks, machine=mach),
                lambda mach: rootset_matching_vectorized(el, eranks, machine=mach),
                mm_ref,
            ),
        }
        payload["workloads"][name] = entry
        print(
            f"{name}: MIS {entry['mis']['speedup_warm']:.1f}x warm / "
            f"{entry['mis']['speedup_cold']:.1f}x cold, "
            f"MM {entry['mm']['speedup_warm']:.1f}x warm / "
            f"{entry['mm']['speedup_cold']:.1f}x cold"
        )
    payload["minimum_scatter_microbenchmark"] = _minimum_scatter_micro(
        paper_random_graph("small"), random_priorities(20000, seed=SEED)
    )
    micro = payload["minimum_scatter_microbenchmark"]
    print(
        f"peel min-scatter: minimum.at {micro['minimum_at_s'] * 1e3:.2f}ms, "
        f"reduceat {micro['reduceat_s'] * 1e3:.2f}ms, "
        f"kernel picks {micro['kernel_path']} "
        f"({micro['kernel_s'] * 1e3:.2f}ms)"
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
