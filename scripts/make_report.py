#!/usr/bin/env python
"""Assemble results/report.html: every figure SVG + ablation table, one page.

Run after ``scripts/run_experiments.py`` (and optionally the benches, which
add the ablation JSONs).  The report embeds the SVGs inline so the single
HTML file is self-contained and viewable offline.

Usage:
    python scripts/make_report.py [--with-trace] [results_dir]

``--with-trace`` appends a per-round telemetry section: a fresh traced run
of the vectorized root-set MIS on the small-tier rMat workload, rendered
as a frontier-size table (round, frontier, decided, selected, work, depth).
"""

from __future__ import annotations

import html
import json
import pathlib
import sys
import time

FIG_ORDER = [
    ("Figure 1 — MIS vs prefix size (random)", ["fig1-work", "fig1-rounds", "fig1-time"]),
    ("Figure 1(d–f) — MIS vs prefix size (rMat)",
     ["fig1-rmat-work", "fig1-rmat-rounds", "fig1-rmat-time"]),
    ("Figure 2 — MM vs prefix size (random)", ["fig2-work", "fig2-rounds", "fig2-time"]),
    ("Figure 2(d–f) — MM vs prefix size (rMat)",
     ["fig2-rmat-work", "fig2-rmat-rounds", "fig2-rmat-time"]),
    ("Figure 3 — MIS time vs threads", ["fig3a", "fig3b"]),
    ("Figure 4 — MM time vs threads", ["fig4a", "fig4b"]),
    ("Parallelism profiles (Algorithm 2)", ["profile-random", "profile-rmat"]),
]

ABLATIONS = [
    ("Luby work ratio (§6)", "luby_work_ratio.json"),
    ("Schedule ablation", "schedule_ablation.json"),
    ("Theorem 3.5 scaling — random", "thm35_random.json"),
    ("Theorem 3.5 scaling — rMat", "thm35_rmat.json"),
    ("Open-question exponent (§7)", "open_question_exponent.json"),
    ("Lemma 3.1 degree reduction", "lemma31_degree_reduction.json"),
    ("Corollary 3.4 path length", "cor34_path_length.json"),
    ("Lemma 4.3 internal edges", "lemma43_internal_edges.json"),
    ("Coloring ablation", "coloring_ablation.json"),
    ("Spanning-forest ablation", "forest_ablation.json"),
]


def trace_section() -> list:
    """Per-round telemetry table for one representative rMat run."""
    from repro.bench.workloads import paper_rmat_graph
    from repro.core.mis.rootset_vectorized import rootset_mis_vectorized
    from repro.core.orderings import random_priorities
    from repro.observability import MemorySink, Tracer, round_records

    g = paper_rmat_graph("small")
    ranks = random_priorities(g.num_vertices, seed=1)
    sink = MemorySink()
    res = rootset_mis_vectorized(g, ranks, tracer=Tracer(sink))
    parts = [
        "<h2>Per-round telemetry — rootset-vec MIS, small rMat</h2>",
        f"<p>n = {g.num_vertices:,}, m = {g.num_edges:,}; MIS size "
        f"{res.size:,} in {res.stats.steps} rounds.  The collapsing frontier "
        "column is the paper's mechanism: nearly all of the graph resolves "
        "in the first few synchronous steps.</p>",
        "<table border='1' cellpadding='4' cellspacing='0'>",
        "<tr><th>round</th><th>frontier</th><th>decided</th>"
        "<th>selected</th><th>work</th><th>depth</th></tr>",
    ]
    for r in round_records(sink.events):
        parts.append(
            f"<tr><td>{r.index}</td><td>{r.frontier:,}</td>"
            f"<td>{r.decided:,}</td><td>{r.selected:,}</td>"
            f"<td>{r.work:,}</td><td>{r.depth:,}</td></tr>"
        )
    parts.append("</table>")
    return parts


def main(argv=None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    with_trace = "--with-trace" in args
    args = [a for a in args if a != "--with-trace"]
    results = pathlib.Path(args[0]) if args else (
        pathlib.Path(__file__).resolve().parent.parent / "results"
    )
    if not results.is_dir():
        print(f"results directory {results} not found; run "
              "scripts/run_experiments.py first")
        return 1
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>repro — SPAA 2012 reproduction report</title>",
        "<style>body{font-family:sans-serif;max-width:1400px;margin:auto;"
        "padding:20px}h2{border-bottom:1px solid #ccc;padding-bottom:4px}"
        ".row{display:flex;flex-wrap:wrap;gap:12px}figure{margin:0}"
        "pre{background:#f6f6f6;padding:10px;overflow-x:auto}</style>",
        "</head><body>",
        "<h1>Greedy Sequential MIS & Matching are Parallel on Average — "
        "reproduction report</h1>",
        f"<p>Generated {time.strftime('%Y-%m-%d %H:%M:%S')} from "
        f"<code>{html.escape(str(results))}</code>.  Simulated times use "
        "the five-constant cost model (docs/cost-model.md); see "
        "EXPERIMENTS.md for paper-vs-measured commentary.</p>",
    ]
    embedded = 0
    for title, fig_ids in FIG_ORDER:
        svgs = [(fid, results / f"{fid}.svg") for fid in fig_ids]
        svgs = [(fid, p) for fid, p in svgs if p.exists()]
        if not svgs:
            continue
        parts.append(f"<h2>{html.escape(title)}</h2><div class='row'>")
        for fid, p in svgs:
            parts.append(f"<figure>{p.read_text()}"
                         f"<figcaption><code>{fid}</code></figcaption></figure>")
            embedded += 1
        parts.append("</div>")
    parts.append("<h2>Ablations</h2>")
    for title, fname in ABLATIONS:
        p = results / fname
        if not p.exists():
            continue
        payload = json.loads(p.read_text())
        parts.append(f"<h3>{html.escape(title)}</h3><pre>"
                     f"{html.escape(json.dumps(payload, indent=2))}</pre>")
    if with_trace:
        parts.extend(trace_section())
    parts.append("</body></html>")
    out = results / "report.html"
    out.write_text("\n".join(parts))
    print(f"wrote {out} with {embedded} embedded figures")
    return 0


if __name__ == "__main__":
    sys.exit(main())
