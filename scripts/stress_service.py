#!/usr/bin/env python
"""Stress the crash-isolated solver service and write a survival report.

Fires a seeded request storm (mixed MIS/matching over several graph
families, a slice of requests carrying wall-clock deadlines) at a
:class:`repro.service.SolverService` while a seeded *fault storm* is
armed: every attempt has a configurable probability of a worker hard
kill (``os._exit``, pre or post compute) and of a kernel fault injected
into the frontier primitives.  Afterwards it checks the three survival
properties the service exists to provide:

1. **No silent wrong answers** — every completed request is bit-identical
   to a clean in-process solve of the same instance.
2. **Typed failures only** — every failed request surfaced a
   :class:`repro.errors.ReproError` subclass, never a raw crash.
3. **The service outlived the storm** — the configured worker count is
   alive at the end, every injected death was retried or surfaced.

The report is written as Markdown (default
``results/stress_service.md``) so a run's evidence can be committed.

Usage:
    python scripts/stress_service.py                 # full storm
    python scripts/stress_service.py --smoke         # tier-1 sized
    python scripts/stress_service.py --requests 500 --kill 0.3
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.engines import solve as direct_solve
from repro.core.orderings import random_priorities
from repro.errors import ReproError
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    rmat_graph,
    uniform_random_graph,
)
from repro.resilience import ChaosScenario
from repro.service import SolveRequest, SolverService


def build_workload(requests: int, seed: int, deadline_every: int):
    """The seeded request storm: (request, reference-key) pairs."""
    graphs = {
        "uniform": uniform_random_graph(400, 1600, seed=seed),
        "rmat": rmat_graph(9, 1500, seed=seed + 1),
        "grid": grid_graph(20, 20),
        "cycle": cycle_graph(300),
    }
    edge_lists = {name: g.edge_list() for name, g in graphs.items()}
    names = sorted(graphs)
    rng = np.random.default_rng(seed)
    storm = []
    for i in range(requests):
        name = names[int(rng.integers(len(names)))]
        problem = "mis" if rng.integers(2) == 0 else "matching"
        req_seed = int(rng.integers(2**31))
        payload = graphs[name] if problem == "mis" else edge_lists[name]
        timeout = 30.0 if deadline_every and i % deadline_every == 0 else None
        storm.append((
            SolveRequest(problem, payload, timeout_seconds=timeout,
                         options={"seed": req_seed}),
            (name, problem, req_seed),
        ))
    return storm


def run_storm(args):
    # One source of truth for chaos service configs: the declarative
    # scenario record (scripts and the soak suite share its mapping).
    scenario = ChaosScenario(
        name="stress-storm",
        description="CLI-configured request storm + fault storm",
        requests=args.requests,
        workers=args.workers,
        max_queue=max(64, args.requests),
        max_retries=args.max_retries,
        kill_probability=args.kill,
        fault_probability=args.fault,
        seed=args.seed,
    )
    config = scenario.service_config()
    storm = build_workload(args.requests, args.seed, args.deadline_every)
    t0 = time.perf_counter()
    with SolverService(config) as svc:
        results = svc.solve_many([req for req, _ in storm], return_errors=True)
        stats = svc.stats()
        workers_alive = stats.workers_alive
    elapsed = time.perf_counter() - t0

    mismatches, untyped, degraded, retried = [], [], 0, 0
    failures = []
    for (req, key), res in zip(storm, results):
        name, problem, req_seed = key
        if isinstance(res, Exception):
            (failures if isinstance(res, ReproError) else untyped).append(
                f"{problem}/{name} seed={req_seed}: {type(res).__name__}: {res}"
            )
            continue
        aux = res.stats.aux
        if aux.get("degraded"):
            degraded += 1
        if aux["service"]["retries"]:
            retried += 1
        ref = direct_solve(problem, req.payload, method="rootset-vec",
                           seed=req_seed)
        if not np.array_equal(res.status, ref.status):
            mismatches.append(f"{problem}/{name} seed={req_seed}: "
                              f"attempts={aux['service']['attempts']}")
    return {
        "config": config,
        "stats": stats,
        "elapsed": elapsed,
        "workers_alive": workers_alive,
        "mismatches": mismatches,
        "untyped": untyped,
        "failures": failures,
        "degraded": degraded,
        "retried": retried,
        "requests": args.requests,
    }


def render_report(outcome, args) -> str:
    stats = outcome["stats"]
    config = outcome["config"]
    survived = not outcome["mismatches"] and not outcome["untyped"]
    lines = [
        "# Solver-service stress report",
        "",
        f"Verdict: **{'SURVIVED' if survived else 'FAILED'}** — "
        f"{stats.completed}/{outcome['requests']} requests completed in "
        f"{outcome['elapsed']:.1f}s, {len(outcome['mismatches'])} mismatches, "
        f"{len(outcome['untyped'])} untyped errors.",
        "",
        "Reproduce with:",
        "",
        "```",
        f"python scripts/stress_service.py --requests {args.requests} "
        f"--workers {args.workers} --kill {args.kill} --fault {args.fault} "
        f"--seed {args.seed} --max-retries {args.max_retries}",
        "```",
        "",
        "## Storm",
        "",
        f"- requests: {outcome['requests']} (mixed MIS/matching over "
        f"uniform/rMat/grid/cycle graphs, every "
        f"{args.deadline_every or 'no'}{'th' if args.deadline_every else ''} "
        f"request with a deadline)",
        f"- chaos: kill probability {config.kill_probability}, kernel-fault "
        f"probability {config.fault_probability}, chaos seed "
        f"{config.chaos_seed}",
        f"- pool: {config.workers} workers, max {config.max_retries} retries",
        "",
        "## Survival",
        "",
        f"- completed: {stats.completed} ({outcome['retried']} needed "
        f"retries, {outcome['degraded']} served by a degraded engine; all "
        f"bit-identical to clean in-process solves)",
        f"- failed (typed): {stats.failed}",
        f"- worker crashes: {stats.worker_crashes} "
        f"(restarts: {stats.worker_restarts}); "
        f"{outcome['workers_alive']}/{config.workers} workers alive at end",
        f"- retries: {stats.retries}; breaker trips: {stats.breaker_trips}; "
        f"deadline failures: {stats.deadline_failures}",
        f"- latency: p50 {stats.latency_p50 * 1e3:.1f} ms, "
        f"p95 {stats.latency_p95 * 1e3:.1f} ms",
    ]
    for title, items in (("Mismatches", outcome["mismatches"]),
                         ("Untyped errors", outcome["untyped"]),
                         ("Typed failures", outcome["failures"])):
        if items:
            lines += ["", f"## {title}", ""]
            lines += [f"- {item}" for item in items]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Seeded request storm + fault storm against the "
        "worker-pool solver service; writes a survival report."
    )
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--kill", type=float, default=0.2,
                        help="per-attempt worker hard-kill probability")
    parser.add_argument("--fault", type=float, default=0.2,
                        help="per-attempt kernel-fault probability")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-retries", type=int, default=8)
    parser.add_argument("--deadline-every", type=int, default=5,
                        help="give every Nth request a deadline (0 = none)")
    parser.add_argument("--out", default="results/stress_service.md",
                        help="survival report path ('-' = stdout only)")
    parser.add_argument("--smoke", action="store_true",
                        help="tier-1 sized run (40 requests, 2 workers)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests = min(args.requests, 40)
        args.workers = min(args.workers, 2)

    outcome = run_storm(args)
    report = render_report(outcome, args)
    print(report)
    if args.out != "-":
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report)
        print(f"report written to {path}")
    return 0 if not outcome["mismatches"] and not outcome["untyped"] else 1


if __name__ == "__main__":
    sys.exit(main())
