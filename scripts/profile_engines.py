#!/usr/bin/env python
"""Profile the hot engine kernels (the HPC-guide workflow: measure first).

Runs cProfile over each vectorized engine on the small-tier workload and
prints the top functions by cumulative time, so optimization work targets
measured bottlenecks rather than guesses.

Usage:
    python scripts/profile_engines.py [--counters] [engine ...]

where each engine is one of: mis-sequential mis-parallel mis-prefix
mm-parallel mm-prefix luby mis-rootset-vec mm-rootset-vec (default: all).

With ``--counters`` each engine instead runs under
:class:`repro.observability.KernelCounters` and prints the per-kernel
call/element/time table — the frontier-kernel view of the same workload.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys

from repro.bench.workloads import paper_random_graph
from repro.core.matching.parallel import parallel_greedy_matching
from repro.core.matching.rootset_vectorized import rootset_matching_vectorized
from repro.core.matching.prefix import prefix_greedy_matching
from repro.core.mis.luby import luby_mis
from repro.core.mis.parallel import parallel_greedy_mis
from repro.core.mis.prefix import prefix_greedy_mis
from repro.core.mis.rootset_vectorized import rootset_mis_vectorized
from repro.core.mis.sequential import sequential_greedy_mis
from repro.core.orderings import random_priorities
from repro.pram.machine import null_machine

TOP = 12


def main(argv=None) -> int:
    graph = paper_random_graph("small")
    ranks = random_priorities(graph.num_vertices, seed=1)
    el = graph.edge_list()
    eranks = random_priorities(el.num_edges, seed=2)

    targets = {
        "mis-sequential": lambda: sequential_greedy_mis(graph, ranks, machine=null_machine()),
        "mis-parallel": lambda: parallel_greedy_mis(graph, ranks, machine=null_machine()),
        "mis-prefix": lambda: prefix_greedy_mis(graph, ranks, prefix_frac=0.02, machine=null_machine()),
        "mis-rootset-vec": lambda: rootset_mis_vectorized(graph, ranks, machine=null_machine()),
        "mm-parallel": lambda: parallel_greedy_matching(el, eranks, machine=null_machine()),
        "mm-prefix": lambda: prefix_greedy_matching(el, eranks, prefix_frac=0.02, machine=null_machine()),
        "mm-rootset-vec": lambda: rootset_matching_vectorized(el, eranks, machine=null_machine()),
        "luby": lambda: luby_mis(graph, seed=3, machine=null_machine()),
    }
    args = list(argv if argv is not None else sys.argv[1:])
    counters = "--counters" in args
    wanted = [a for a in args if a != "--counters"] or list(targets)
    unknown = [w for w in wanted if w not in targets]
    if unknown:
        print(f"unknown engines: {unknown}; choose from {sorted(targets)}")
        return 2
    print(f"profiling on {graph!r}\n")
    for name in wanted:
        print(f"=== {name} " + "=" * max(1, 60 - len(name)))
        if counters:
            from repro.observability import KernelCounters

            with KernelCounters() as kc:
                targets[name]()
            if kc.total_calls:
                print(kc.format())
            else:
                print("(no frontier-kernel calls — pointer/scalar engine)")
            print()
            continue
        profiler = cProfile.Profile()
        profiler.enable()
        targets[name]()
        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(TOP)
        lines = buf.getvalue().splitlines()
        # Keep header + top rows, drop the noise.
        for line in lines[:TOP + 8]:
            print(line)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
