#!/usr/bin/env python
"""Storm the HTTP gateway over real sockets and write a survival report.

The network-layer sibling of ``scripts/stress_service.py``: a seeded
storm of concurrent HTTP clients (mixed MIS/matching, registered and
inline graphs, a slice of requests carrying deadlines down to a few
microseconds) is fired at a live :class:`repro.service.http.HTTPGateway`
whose backing service has a worker-kill and kernel-fault storm armed.
A sampler thread polls ``/v1/health`` throughout, recording the
degraded/ok transitions the worker kills cause.

Afterwards the three gateway survival properties are checked:

1. **No silent wrong answers** — every ``200`` body is bit-identical to
   a clean in-process solve of the same instance (cache hits, retried
   solves, and degraded-engine solves included).
2. **Typed failures only** — every non-``200`` carried a typed
   ``{"error": …}`` body from the repro taxonomy; a ``500`` (or a
   nonzero ``untyped_errors`` counter in ``/v1/metrics``) fails the run.
3. **Nothing leaked** — zero stray ``repro-*`` shared-memory segments
   after shutdown, and ``/v1/health`` is ``ok`` again once the storm
   stops.

After the storm an **exactly-once session exercise** runs (disable
with ``--sessions 0``): MIS and matching sessions stream mutation
batches over HTTP under ``X-Repro-Idempotency-Key`` headers while a
seeded fraction (``--ambiguous``) of outcomes is made ambiguous —
response lost after commit, the whole stack torn down and restored
from persisted snapshots, or killed before the request landed.  Every
ambiguous mutation is retried with the same key and must be applied
exactly once (N/N in the report), with the final session answers
bit-identical to a from-scratch ``rootset-vec`` solve of the shadow
graph and zero ``.corrupt`` quarantine files left behind.

The report is written as Markdown (default
``results/stress_gateway.md``) so a run's evidence can be committed.

Usage:
    python scripts/stress_gateway.py                 # full storm
    python scripts/stress_gateway.py --smoke         # tier-1 sized
    python scripts/stress_gateway.py --requests 300 --kill 0.3
    python scripts/stress_gateway.py --sessions 20 --ambiguous 0.5
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.engines import solve as direct_solve
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    rmat_graph,
    uniform_random_graph,
)
from repro.resilience import ChaosScenario, reap_orphans, run_scenario
from repro.service.http import GatewayConfig, HTTPGateway, request_json


def _shm_segments():
    root = Path("/dev/shm")
    if not root.exists():
        return set()
    return {p.name for p in root.glob("repro-*")}


def build_graphs(seed: int):
    return {
        "uniform": uniform_random_graph(400, 1600, seed=seed),
        "rmat": rmat_graph(9, 1500, seed=seed + 1),
        "grid": grid_graph(20, 20),
        "cycle": cycle_graph(300),
    }


def build_storm(graphs, requests: int, seed: int, deadline_every: int):
    """Seeded plan: (payload-name, body, headers, reference-key) rows."""
    names = sorted(graphs)
    rng = np.random.default_rng(seed)
    plans = []
    for i in range(requests):
        name = names[int(rng.integers(len(names)))]
        problem = "mis" if rng.integers(2) == 0 else "matching"
        req_seed = int(rng.integers(2**31))
        body = {"problem": problem, "graph": name, "seed": req_seed}
        if deadline_every and i % deadline_every == 0:
            body["timeout_s"] = 30.0
        if deadline_every and i % (3 * deadline_every) == 1:
            # The hostile slice: a deadline no solve can meet.  Must
            # come back as a typed 504, never a hung socket.
            body["timeout_s"] = 1e-5
        plans.append((name, problem, req_seed, body))
    return plans


def run_storm(args):
    scenario = ChaosScenario(
        name="gateway-stress-storm",
        description="CLI-configured HTTP storm + worker fault storm",
        requests=args.requests,
        workers=args.workers,
        max_queue=max(64, args.requests),
        max_retries=args.max_retries,
        kill_probability=args.kill,
        fault_probability=args.fault,
        seed=args.seed,
    )
    graphs = build_graphs(args.seed)
    pi = np.random.default_rng(args.seed).permutation(
        graphs["uniform"].num_vertices
    )
    plans = build_storm(graphs, args.requests, args.seed, args.deadline_every)
    segments_before = _shm_segments()

    gateway = HTTPGateway(
        config=GatewayConfig(port=0, supervise_interval_s=1.0),
        **{
            "workers": scenario.workers,
            "max_queue": max(64, args.requests),
            "max_retries": args.max_retries,
            "kill_probability": args.kill,
            "fault_probability": args.fault,
            "chaos_seed": args.seed,
            "cache_entries": 256,
        },
    )
    for name, graph in graphs.items():
        gateway.add_graph(name, graph, pi if name == "uniform" else None)

    results = [None] * len(plans)
    health_samples = []
    stop_sampling = threading.Event()

    def sample_health():
        while not stop_sampling.is_set():
            try:
                status, _, body = request_json(
                    gateway.address, "GET", "/v1/health", timeout=10
                )
                health_samples.append((status, body["status"]))
            except OSError:
                health_samples.append((0, "unreachable"))
            stop_sampling.wait(0.1)

    def fire(i, body):
        results[i] = request_json(
            gateway.address, "POST", "/v1/solve", body, timeout=120
        )

    t0 = time.perf_counter()
    with gateway:
        sampler = threading.Thread(target=sample_health, daemon=True)
        sampler.start()
        threads = []
        for i, (_, _, _, body) in enumerate(plans):
            t = threading.Thread(target=fire, args=(i, body))
            t.start()
            threads.append(t)
            if len(threads) >= args.concurrency:
                threads.pop(0).join()
        for t in threads:
            t.join()
        # The storm is over: the gateway must return to healthy
        # (respawned workers, re-closed breakers, no wedged loop)
        # before shutdown.  A half-open breaker only re-closes once a
        # success flows through it, so the recovery poll carries light
        # probe traffic — exactly what production traffic would do.
        deadline = time.monotonic() + args.recovery_window_s
        probe_seed = 10**9
        while True:
            final_health, _, final_health_body = request_json(
                gateway.address, "GET", "/v1/health", timeout=30
            )
            if final_health == 200 or time.monotonic() >= deadline:
                break
            probe_seed += 1
            for problem in ("mis", "matching"):
                request_json(
                    gateway.address, "POST", "/v1/solve",
                    {"problem": problem, "graph": "grid",
                     "seed": probe_seed}, timeout=60,
                )
            time.sleep(0.25)
        _, _, metrics = request_json(
            gateway.address, "GET", "/v1/metrics", timeout=30
        )
        stop_sampling.set()
        sampler.join(timeout=5)
    elapsed = time.perf_counter() - t0

    leaked = sorted(_shm_segments() - segments_before)
    if leaked:
        reap_orphans()
        leaked = sorted(set(leaked) & _shm_segments())

    completed, mismatches, untyped = 0, [], []
    cache_sources = {}
    failures = {}
    for (name, problem, req_seed, body), out in zip(plans, results):
        status, headers, payload = out
        if status == 200:
            completed += 1
            source = headers.get("x-repro-cache", "?")
            cache_sources[source] = cache_sources.get(source, 0) + 1
            ref = direct_solve(
                problem,
                graphs[name] if problem == "mis"
                else graphs[name].edge_list(),
                method="rootset-vec", seed=req_seed,
            )
            if payload["status"] != ref.status.tolist():
                mismatches.append(
                    f"{problem}/{name} seed={req_seed} ({source})"
                )
        elif status == 500 or payload is None or "error" not in payload:
            untyped.append(f"{problem}/{name} seed={req_seed}: HTTP {status}")
        else:
            key = f"{status} {payload['error']}"
            failures[key] = failures.get(key, 0) + 1
    return {
        "scenario": scenario,
        "elapsed": elapsed,
        "completed": completed,
        "mismatches": mismatches,
        "untyped": untyped,
        "failures": failures,
        "cache_sources": cache_sources,
        "health_samples": health_samples,
        "final_health": (final_health, final_health_body["status"]),
        "metrics": metrics,
        "leaked": leaked,
        "requests": len(plans),
    }


def run_sessions(args):
    """Exactly-once session exercise: ambiguous outcomes, same-key retries.

    Delegates to the ``ambiguous_retry`` chaos runner so the script and
    the soak exercise the identical code path; the scenario here is
    CLI-parameterized (batch count, ambiguity probability, seed).
    """
    scenario = ChaosScenario(
        name="gateway-exactly-once",
        description="CLI-configured ambiguous-outcome session mutations",
        requests=args.sessions,
        kill_probability=args.ambiguous,
        max_retries=args.max_retries,
        ambiguous_retry=True,
        seed=args.seed,
    )
    return run_scenario(scenario)


def render_sessions(session_outcome, args):
    """Markdown section for the exactly-once session exercise."""
    if session_outcome is None:
        return True, []
    retry_note = next(
        (n for n in session_outcome.notes if "retried exactly once" in n),
        "no ambiguous mutations were drawn (raise --ambiguous)",
    )
    identity_notes = [
        n for n in session_outcome.notes if "bit-identical" in n
    ]
    counters = session_outcome.stats.get("sessions", {})
    lines = [
        "",
        "## Exactly-once sessions",
        "",
        f"- verdict: **{'SURVIVED' if session_outcome.ok else 'FAILED'}** "
        f"— {session_outcome.completed} checks passed in "
        f"{session_outcome.duration_s:.1f}s, "
        f"{len(session_outcome.mismatches)} exactly-once violations, "
        f"{len(session_outcome.untyped_failures)} untyped errors",
        f"- exercise: {args.sessions} mutation batches per session "
        f"(MIS + matching) over HTTP, each under an "
        f"X-Repro-Idempotency-Key; ambiguity probability "
        f"{args.ambiguous} (response lost after commit / stack killed "
        f"and restored from snapshots / killed before commit)",
        f"- retries: {retry_note}",
        f"- session counters at shutdown: "
        f"{counters or 'metrics scrape unavailable'}",
    ]
    lines += [f"- {note}" for note in identity_notes]
    for title, items in (
        ("exactly-once violations", session_outcome.mismatches),
        ("untyped errors", session_outcome.untyped_failures),
    ):
        if items:
            lines += [f"- {title}:"]
            lines += [f"  - {item}" for item in items]
    return session_outcome.ok, lines


def render_report(outcome, args, session_outcome=None) -> str:
    scenario = outcome["scenario"]
    sessions_ok, session_lines = render_sessions(session_outcome, args)
    metrics_gw = outcome["metrics"]["gateway"]
    solve_route = outcome["metrics"]["endpoints"].get("POST /v1/solve", {})
    health_counts = {}
    for _, word in outcome["health_samples"]:
        health_counts[word] = health_counts.get(word, 0) + 1
    survived = (
        outcome["completed"] > 0
        and not outcome["mismatches"]
        and not outcome["untyped"]
        and metrics_gw["untyped_errors"] == 0
        and not outcome["leaked"]
        and outcome["final_health"][0] in (200, 207)
        and sessions_ok
    )
    lines = [
        "# HTTP gateway stress report",
        "",
        f"Verdict: **{'SURVIVED' if survived else 'FAILED'}** — "
        f"{outcome['completed']}/{outcome['requests']} requests answered "
        f"200 in {outcome['elapsed']:.1f}s, "
        f"{len(outcome['mismatches'])} output mismatches, "
        f"{len(outcome['untyped'])} untyped errors, "
        f"{len(outcome['leaked'])} leaked segments.",
        "",
        "Reproduce with:",
        "",
        "```",
        f"python scripts/stress_gateway.py --requests {args.requests} "
        f"--workers {args.workers} --kill {args.kill} --fault {args.fault} "
        f"--seed {args.seed} --concurrency {args.concurrency} "
        f"--max-retries {args.max_retries} --sessions {args.sessions} "
        f"--ambiguous {args.ambiguous}",
        "```",
        "",
        "## Storm",
        "",
        f"- requests: {outcome['requests']} concurrent HTTP solves "
        f"(mixed MIS/matching over registered uniform/rMat/grid/cycle "
        f"graphs; every {args.deadline_every}th with a 30s deadline and "
        f"a slice with an unmeetable 10µs deadline)",
        f"- chaos armed in the backing service: worker hard-kill "
        f"probability {scenario.kill_probability}, kernel-fault "
        f"probability {scenario.fault_probability}, seed {scenario.seed}",
        f"- pool: {scenario.workers} workers, "
        f"max {scenario.max_retries} retries, 256-entry result cache",
        "",
        "## Survival",
        "",
        f"- completed: {outcome['completed']} — all bit-identical to "
        f"clean in-process solves "
        f"(cache disposition: {outcome['cache_sources']})",
        f"- typed failures: {outcome['failures'] or 'none'}",
        f"- untyped errors: {len(outcome['untyped'])} "
        f"(gateway counter: {metrics_gw['untyped_errors']})",
        f"- shed (429): {metrics_gw['shed']}; "
        f"stale served: {metrics_gw['stale_served']}; "
        f"connections rejected: {metrics_gw['connections_rejected']}",
        f"- solve latency: "
        f"p50 {solve_route.get('latency_p50', 0) * 1e3:.1f} ms, "
        f"p95 {solve_route.get('latency_p95', 0) * 1e3:.1f} ms",
        f"- leaked segments after shutdown: "
        f"{outcome['leaked'] or 'none'}",
        "",
        "## Health transitions",
        "",
        f"- sampled every 100 ms during the storm: {health_counts}",
        f"- final health (post-storm, pre-shutdown): "
        f"HTTP {outcome['final_health'][0]} ({outcome['final_health'][1]})",
    ]
    lines += session_lines
    for title, items in (("Mismatches", outcome["mismatches"]),
                         ("Untyped errors", outcome["untyped"])):
        if items:
            lines += ["", f"## {title}", ""]
            lines += [f"- {item}" for item in items]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Concurrent HTTP storm + worker fault storm against "
        "the asyncio gateway; writes a survival report."
    )
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=16,
                        help="concurrent client threads")
    parser.add_argument("--kill", type=float, default=0.2,
                        help="per-attempt worker hard-kill probability")
    parser.add_argument("--fault", type=float, default=0.2,
                        help="per-attempt kernel-fault probability")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-retries", type=int, default=8)
    parser.add_argument("--deadline-every", type=int, default=5,
                        help="give every Nth request a deadline")
    parser.add_argument("--recovery-window-s", type=float, default=25.0,
                        help="post-storm window for health to return to ok")
    parser.add_argument("--sessions", type=int, default=12,
                        help="mutation batches per session in the "
                        "exactly-once exercise (0 disables it)")
    parser.add_argument("--ambiguous", type=float, default=0.35,
                        help="per-mutation probability the outcome is "
                        "made ambiguous and retried with the same key")
    parser.add_argument("--out", default="results/stress_gateway.md",
                        help="survival report path ('-' = stdout only)")
    parser.add_argument("--smoke", action="store_true",
                        help="tier-1 sized run (40 requests, 2 workers)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests = min(args.requests, 40)
        args.workers = min(args.workers, 2)
        args.concurrency = min(args.concurrency, 8)
        args.sessions = min(args.sessions, 6)

    outcome = run_storm(args)
    session_outcome = run_sessions(args) if args.sessions > 0 else None
    report = render_report(outcome, args, session_outcome)
    print(report)
    if args.out != "-":
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report)
        print(f"report written to {path}")
    ok = (
        outcome["completed"] > 0
        and not outcome["mismatches"]
        and not outcome["untyped"]
        and not outcome["leaked"]
        and (session_outcome is None or session_outcome.ok)
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
