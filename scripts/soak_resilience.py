#!/usr/bin/env python
"""Run every declarative chaos scenario and write a resilience soak report.

Executes the full :data:`repro.resilience.SCENARIOS` suite — kernel
faults, worker kills pre/post compute, shard kills mid-barrier,
shared-memory segment corruption/unlink/orphaning, deadline storms, and
queue floods — via :func:`repro.resilience.run_scenario`, then checks
the invariants each scenario is allowed to bend and the ones it never
may:

* typed :class:`repro.errors.ReproError` failures and shed load are
  *expected* under chaos;
* untyped errors, result mismatches against a clean sequential-greedy
  reference, leaked ``/dev/shm`` segments surviving the reap, and stray
  worker processes are *never* acceptable.

The report is written as Markdown (default
``results/soak_resilience.md``) so a run's evidence can be committed.

Usage:
    python scripts/soak_resilience.py                 # full soak
    python scripts/soak_resilience.py --smoke         # tier-1 sized
    python scripts/soak_resilience.py --only segment-corrupt
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.resilience import SCENARIOS, run_scenario, scenario_by_name


def run_suite(args):
    """Run the selected scenarios, returning their outcomes in order."""
    scenarios = (
        [scenario_by_name(name) for name in args.only]
        if args.only
        else list(SCENARIOS)
    )
    if args.smoke:
        scenarios = [s.scaled(args.smoke_factor) for s in scenarios]
    outcomes = []
    for scenario in scenarios:
        print(f"running {scenario.name} ({scenario.requests} requests)...",
              flush=True)
        outcome = run_scenario(scenario, seed_offset=args.seed)
        verdict = "ok" if outcome.ok else "FAILED"
        print(f"  {verdict}: {outcome.completed}/{outcome.requests} completed,"
              f" {outcome.failed} typed failures, {outcome.shed} shed,"
              f" {len(outcome.reaped_segments)} reaped,"
              f" {outcome.duration_s:.1f}s", flush=True)
        outcomes.append((scenario, outcome))
    return outcomes


def render_report(outcomes, args) -> str:
    ok = all(o.ok for _, o in outcomes)
    total_req = sum(o.requests for _, o in outcomes)
    total_done = sum(o.completed for _, o in outcomes)
    total_reaped = sum(len(o.reaped_segments) for _, o in outcomes)
    elapsed = sum(o.duration_s for _, o in outcomes)
    lines = [
        "# Resilience soak report",
        "",
        f"Verdict: **{'SURVIVED' if ok else 'FAILED'}** — "
        f"{len(outcomes)} chaos scenarios, {total_done}/{total_req} "
        f"requests completed, {total_reaped} orphaned segments reaped, "
        f"0 leaked segments, in {elapsed:.1f}s.",
        "",
        "Reproduce with:",
        "",
        "```",
        f"python scripts/soak_resilience.py --seed {args.seed}"
        + (" --smoke" if args.smoke else ""),
        "```",
        "",
        "Every completed request is bit-identical to a clean in-process "
        "sequential-greedy solve of the same seeded instance.  Typed "
        "failures (deadline exceeded, worker crash, invalid ordering "
        "after corruption) and shed load are the *designed* responses to "
        "the injected faults; untyped errors, mismatches, leaked "
        "segments, and stray processes fail the soak.",
        "",
        "| scenario | requests | completed | shed | typed failures | "
        "reaped | leaked | strays | time (s) | verdict |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for scenario, o in outcomes:
        failures = (
            ", ".join(f"{k}×{v}" for k, v in sorted(o.failures.items()))
            or "—"
        )
        lines.append(
            f"| {scenario.name} | {o.requests} | {o.completed} | {o.shed} "
            f"| {failures} | {len(o.reaped_segments)} "
            f"| {len(o.leaked_segments)} | {len(o.stray_processes)} "
            f"| {o.duration_s:.1f} | {'ok' if o.ok else 'FAILED'} |"
        )
    lines += ["", "## Scenarios", ""]
    for scenario, o in outcomes:
        lines.append(f"- **{scenario.name}** — {scenario.description}")
        for note in o.notes:
            lines.append(f"  - {note}")
        for title, items in (("untyped", o.untyped_failures),
                             ("mismatch", o.mismatches),
                             ("leaked", o.leaked_segments),
                             ("stray", o.stray_processes)):
            for item in items:
                lines.append(f"  - **{title}**: {item}")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the declarative chaos-scenario suite and write "
        "a resilience soak report."
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="seed offset mixed into every scenario stream")
    parser.add_argument("--only", nargs="*", default=None, metavar="NAME",
                        help="run only the named scenarios")
    parser.add_argument("--smoke", action="store_true",
                        help="scale request counts down for a <60s run")
    parser.add_argument("--smoke-factor", type=float, default=0.34,
                        help="request-count scale applied by --smoke")
    parser.add_argument("--out", default="results/soak_resilience.md",
                        help="report path ('-' = stdout only)")
    args = parser.parse_args(argv)

    outcomes = run_suite(args)
    report = render_report(outcomes, args)
    print()
    print(report)
    if args.out != "-":
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report)
        print(f"report written to {path}")
    return 0 if all(o.ok for _, o in outcomes) else 1


if __name__ == "__main__":
    sys.exit(main())
