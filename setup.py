# Legacy shim for environments without PEP 517 build isolation (e.g. the
# offline container this reproduction was developed in, where `pip install
# -e .` cannot fetch build dependencies).  All metadata lives in
# pyproject.toml; use `python setup.py develop` only as the fallback
# documented in README.md.
from setuptools import setup

setup()
