#!/usr/bin/env python
"""Anatomy of a prefix-based run: where does the work and time go?

Dissects one prefix-based MIS execution with the trace tools:

* the **work breakdown by tag** shows the split between mandatory work
  (slot scans, one-time gathers) and the redundant inner-step
  re-examinations that grow with prefix size;
* the **parallelism profile** shows how front-loaded Algorithm 2's steps
  are (most of the graph resolves immediately — the reason speedups exist);
* the **critical fraction** shows, per processor count, how much of the
  simulated time is *not* divisible work — the quantity that forces the
  U shape of Figure 1c.

Run:
    python examples/trace_anatomy.py [n] [m] [seed]
"""

import sys

import numpy as np

import repro
from repro.core.dependence import average_parallelism, parallelism_profile
from repro.pram import Machine, critical_fraction, format_trace, work_breakdown


def main(n: int = 30_000, m: int = 150_000, seed: int = 0) -> None:
    graph = repro.generators.uniform_random_graph(n, m, seed=seed)
    ranks = repro.random_priorities(n, seed=seed + 1)

    print("=== parallelism profile (Algorithm 2) ===")
    profile = parallelism_profile(graph, ranks)
    total = int(profile.sum())
    running = 0
    for step, count in enumerate(profile.tolist(), start=1):
        running += count
        bar = "#" * max(1, int(50 * count / total))
        print(f"  step {step:>2}: {count:>7} decided  {bar}  "
              f"({100 * running / total:.1f}% cumulative)")
    print(f"  average parallelism: {average_parallelism(graph, ranks):,.0f} "
          f"vertices/step over {profile.size} steps")

    for frac, label in ((0.002, "small prefix (work-optimal)"),
                        (0.1, "large prefix (parallelism-optimal)")):
        print(f"\n=== trace: {label}, prefix/N = {frac} ===")
        machine = Machine()
        repro.maximal_independent_set(
            graph, ranks, method="prefix", prefix_frac=frac, machine=machine
        )
        breakdown = work_breakdown(machine)
        for tag in ("scan", "gather", "inner"):
            if tag in breakdown:
                b = breakdown[tag]
                print(f"  {tag:<7} {b['work']:>9} ops  "
                      f"({100 * b['fraction']:.1f}%)  in {b['steps']} steps")
        print(f"  total   {machine.work:>9} ops in {machine.num_rounds} rounds")
        for p in (1, 8, 32, 128):
            cf = critical_fraction(machine, p)
            t = repro.simulate_time(machine, p)
            print(f"  P={p:>3}: simulated {t:.2e} s, "
                  f"{100 * cf:.0f}% overhead/depth-bound")

    print("\nReading: the small prefix does ~pure mandatory work but is "
          "overhead-bound at high P (many rounds); the large prefix buys "
          "divisible work at the cost of inner-step redundancy.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
