#!/usr/bin/env python
"""A guided tour of the paper, section by section, on a live graph.

Walks the SPAA 2012 paper's claims in order and prints the corresponding
measured quantity from this library — a runnable table of contents.
docs/paper-map.md is the full static index; this script is the dynamic one.

Run:
    python examples/paper_tour.py [n] [m] [seed]
"""

import sys

import numpy as np

import repro
from repro.core.dependence import (
    average_parallelism,
    dependence_length,
    longest_path_length,
    matching_dependence_length,
)
from repro.core.mis import luby_mis, theorem45_prefix_sizes
from repro.extensions import (
    parallel_spanning_forest,
    sequential_spanning_forest,
)
from repro.graphs.linegraph import line_graph
from repro.theory import (
    dependence_length_bound,
    internal_edge_count,
    max_degree_after_prefix,
)


def section(title):
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main(n: int = 20_000, m: int = 100_000, seed: int = 0) -> None:
    g = repro.generators.uniform_random_graph(n, m, seed=seed)
    ranks = repro.random_priorities(n, seed=seed + 1)
    print(f"touring on G({n}, {m}), max degree {g.max_degree()}, "
          f"one random order (seed {seed + 1})")

    section("§1  The trivial parallelization is highly parallel")
    dep = dependence_length(g, ranks)
    print(f"dependence length of the greedy MIS: {dep} steps "
          f"(log2^2 n = {np.log2(n) ** 2:.0f})")
    print(f"average parallelism: {average_parallelism(g, ranks):,.0f} "
          "vertices decided per step")

    section("§3  Priority DAG: dependence length vs longest path")
    lp = longest_path_length(g, ranks)
    print(f"longest directed path in the priority DAG: {lp}")
    print(f"dependence length: {dep}  (<= longest path; can be far less —")
    kg = repro.generators.complete_graph(200)
    kranks = repro.random_priorities(200, seed=seed)
    print(f" on K_200: path {longest_path_length(kg, kranks)}, "
          f"dependence length {dependence_length(kg, kranks)})")

    section("§3  Lemma 3.1: prefixes shrink the maximum degree")
    d = g.max_degree()
    k = max(1, int(np.log(n) / (d / 2) * n))
    print(f"after the (ln n / (Δ/2))-prefix ({k} vertices): residual max "
          f"degree {max_degree_after_prefix(g, ranks, k)} (target Δ/2 = {d // 2})")

    section("§3  Theorem 3.5: dep length <= O(log Δ · log n)")
    print(f"measured {dep} <= bound {dependence_length_bound(n, d):.0f} ✓")

    section("§4  Linear work: internal-edge sparsity (Lemma 4.3)")
    small = max(1, int(0.5 / d * n))
    print(f"a (0.5/Δ)-prefix of {small} vertices induces only "
          f"{internal_edge_count(g, ranks, small)} internal edges")
    print("theorem-4.5 adaptive schedule:",
          theorem45_prefix_sizes(n, d)[:6], "...")

    section("§5  Matching: same story over edges (Lemma 5.1)")
    el = g.edge_list()
    eranks = repro.random_priorities(el.num_edges, seed=seed + 2)
    mm_dep = matching_dependence_length(el, eranks)
    print(f"MM dependence length: {mm_dep} (log2^2 m = "
          f"{np.log2(el.num_edges) ** 2:.0f})")
    small_g = repro.generators.uniform_random_graph(300, 900, seed=seed)
    lg, small_el = line_graph(small_g)
    lr = repro.random_priorities(small_el.num_edges, seed=seed + 3)
    mm = repro.maximal_matching(small_el, lr, method="parallel")
    mis_lg = repro.maximal_independent_set(lg, lr, method="parallel")
    print(f"line-graph reduction on a small instance: MM == MIS(L(G)) is "
          f"{bool(np.array_equal(mm.matched, mis_lg.in_set))}")

    section("§6  Experiments: work is why prefix beats Luby")
    pre = repro.maximal_independent_set(g, ranks, method="prefix",
                                        machine=repro.Machine())
    lub = luby_mis(g, seed=seed + 4, machine=repro.Machine())
    print(f"prefix work {pre.stats.work:,} vs Luby work {lub.stats.work:,} "
          f"-> ratio {lub.stats.work / pre.stats.work:.1f}x")
    for p in (1, 32):
        tp = repro.simulate_time(pre.machine, p)
        tl = repro.simulate_time(lub.machine, p)
        print(f"  simulated at P={p:>2}: prefix {tp:.2e}s, Luby {tl:.2e}s")

    section("§7  Future work, implemented: spanning forest")
    f_seq, _ = sequential_spanning_forest(el, eranks)
    f_par, stats = parallel_spanning_forest(el, eranks)
    print(f"greedy forest: {int(f_seq.sum())} edges; parallel commit "
          f"rounds: {stats.steps}; identical to sequential: "
          f"{bool(np.array_equal(f_seq, f_par))}")

    print("\ntour complete — see docs/paper-map.md for the full index.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
