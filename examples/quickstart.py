#!/usr/bin/env python
"""Quickstart: compute an MIS and a maximal matching, verify, inspect stats.

Run:
    python examples/quickstart.py [n] [m] [seed]

This touches the whole public surface in ~40 lines: build a graph, pick a
random order, run the prefix-based engines, verify the outputs, and read
the work/depth accounting that the paper's figures are built from.
"""

import sys

import repro
from repro.core.mis import assert_valid_mis
from repro.core.matching import assert_valid_matching
from repro.pram import CostModel, simulate_time


def main(n: int = 10_000, m: int = 50_000, seed: int = 0) -> None:
    graph = repro.generators.uniform_random_graph(n, m, seed=seed)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"max degree {graph.max_degree()}")

    # --- maximal independent set -----------------------------------------
    ranks = repro.random_priorities(graph.num_vertices, seed=seed + 1)
    mis = repro.maximal_independent_set(graph, ranks, method="prefix")
    assert_valid_mis(graph, mis.in_set, ranks)   # valid AND lex-first
    print(f"\nMIS: {mis.size} vertices "
          f"({100 * mis.size / graph.num_vertices:.1f}% of the graph)")
    s = mis.stats
    print(f"  schedule: {s.rounds} rounds, {s.steps} inner steps, "
          f"prefix size {s.prefix_size}")
    print(f"  exact work: {s.work} operations")
    for p in (1, 8, 32):
        print(f"  simulated time on {p:>2} processors: "
              f"{simulate_time(mis.machine, p, CostModel()):.2e} s")

    # --- maximal matching --------------------------------------------------
    edges = graph.edge_list()
    eranks = repro.random_priorities(edges.num_edges, seed=seed + 2)
    mm = repro.maximal_matching(edges, eranks, method="prefix")
    assert_valid_matching(edges, mm.matched, eranks)
    print(f"\nMatching: {mm.size} edges "
          f"(covers {2 * mm.size} of {graph.num_vertices} vertices)")
    print(f"  schedule: {mm.stats.rounds} rounds, {mm.stats.steps} inner steps")

    # --- the determinism guarantee ------------------------------------------
    again = repro.maximal_independent_set(graph, ranks, method="parallel")
    assert (again.in_set == mis.in_set).all()
    print("\ndeterminism: parallel schedule returned the identical MIS ✓")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
