#!/usr/bin/env python
"""Greedy coloring of an interference graph — the §7 extension in action.

Register allocation's core abstraction: variables are vertices, an edge
means two live ranges interfere, and a proper coloring assigns registers.
Greedy sequential coloring in a random order uses at most Δ+1 colors; this
example runs both the sequential loop and the Jones–Plassmann-style
parallel schedule from :mod:`repro.extensions.coloring`, verifies they
produce the *same* coloring, and contrasts the schedule depth with the
MIS dependence length on the same order (coloring must respect every
earlier-neighbor dependence; MIS can shortcut).

Run:
    python examples/register_coloring.py [variables] [interferences] [seed]
"""

import sys

import numpy as np

import repro
from repro.core.dependence import dependence_length, longest_path_length
from repro.extensions import (
    is_proper_coloring,
    parallel_greedy_coloring,
    sequential_greedy_coloring,
)


def main(n: int = 8_000, m: int = 48_000, seed: int = 0) -> None:
    graph = repro.generators.uniform_random_graph(n, m, seed=seed)
    ranks = repro.random_priorities(n, seed=seed + 1)
    print(f"interference graph: {n} variables, {m} interferences, "
          f"max degree {graph.max_degree()}")

    seq_colors, seq_stats = sequential_greedy_coloring(graph, ranks)
    par_colors, par_stats = parallel_greedy_coloring(graph, ranks)
    assert np.array_equal(seq_colors, par_colors)
    assert is_proper_coloring(graph, seq_colors)

    used = int(seq_colors.max()) + 1
    print(f"\nregisters used: {used} (first-fit bound: Δ+1 = {graph.max_degree() + 1})")
    hist = np.bincount(seq_colors)
    print("register pressure (variables per register, first 10):",
          hist[:10].tolist())

    print(f"\nparallel schedule: {par_stats.steps} steps "
          f"(= longest path in the priority DAG: "
          f"{longest_path_length(graph, ranks)})")
    print(f"MIS dependence length on the same order: "
          f"{dependence_length(graph, ranks)} steps")
    print("Coloring waits for *all* earlier neighbors; MIS can resolve a "
          "vertex as soon as one earlier neighbor joins the set — which is "
          "why its schedule is shallower on the same π.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
