#!/usr/bin/env python
"""Prefix-based MIS vs Luby's algorithm — Figure 3, interactively.

The classical objection to "just parallelize the greedy loop" is that
dedicated parallel MIS algorithms (Luby 1986) already exist.  The paper's
answer, made tangible here:

* Luby re-randomizes priorities every round, so it must process the whole
  live graph each time — measure its work;
* the prefix-based greedy algorithm keeps ONE order and touches most
  edges once — measure its work at several prefix sizes;
* replay both traces across thread counts and find the crossovers.

Run:
    python examples/luby_showdown.py [n] [m] [seed]
"""

import sys

import repro
from repro.core.mis import luby_mis, prefix_greedy_mis, sequential_greedy_mis
from repro.pram import Machine, speedup_curve
from repro.util import format_table


def main(n: int = 50_000, m: int = 250_000, seed: int = 0) -> None:
    graph = repro.generators.uniform_random_graph(n, m, seed=seed)
    ranks = repro.random_priorities(n, seed=seed + 1)
    threads = (1, 2, 4, 8, 16, 32)

    runs = {}
    mach = Machine()
    res = sequential_greedy_mis(graph, ranks, machine=mach)
    runs["serial greedy"] = (mach, res.stats)
    for frac in (0.01, 0.05):
        mach = Machine()
        res = prefix_greedy_mis(graph, ranks, prefix_frac=frac, machine=mach)
        runs[f"prefix {frac:g}N"] = (mach, res.stats)
    mach = Machine()
    res = repro.maximal_independent_set(graph, ranks, method="theorem45",
                                        machine=mach)
    runs["prefix thm4.5"] = (mach, res.stats)
    mach = Machine()
    res = luby_mis(graph, seed=seed + 2, machine=mach)
    runs["Luby"] = (mach, res.stats)

    rows = []
    for name, (machine, stats) in runs.items():
        curve = speedup_curve(machine, threads)
        rows.append(
            [name, stats.work, stats.rounds]
            + [f"{curve[p]:.2e}" for p in threads]
        )
    headers = ["algorithm", "work", "rounds"] + [f"t(P={p})" for p in threads]
    print(f"G({n}, {m}), one fixed order for the greedy engines:\n")
    print(format_table(headers, rows))

    luby_work = runs["Luby"][1].work
    best_prefix = min(
        (s for name, (_, s) in runs.items() if name.startswith("prefix")),
        key=lambda s: s.work,
    )
    print(f"\nLuby does {luby_work / best_prefix.work:.1f}x the work of the "
          "best prefix configuration — the mechanism behind the paper's "
          "4-8x running-time gap (Section 6).")
    print("Determinism bonus: every greedy row above computed the *same* "
          "MIS; Luby's differs run to run.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
