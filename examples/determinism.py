#!/usr/bin/env python
"""Determinism demo: one priority order, one answer — under every schedule.

The practical claim of the paper that this library is built around: once
the random order π is fixed, the greedy MIS/MM result is a pure function
of (graph, π).  Sequential execution, the fully parallel schedule, every
prefix size in between, and the pointer-level root-set implementation all
return bit-identical answers.  Luby's algorithm — the classical baseline —
does not have this property: its answer changes with the seed.

Run:
    python examples/determinism.py [n] [m] [seed]
"""

import sys

import numpy as np

import repro
from repro.core.mis import luby_mis


def main(n: int = 5_000, m: int = 25_000, seed: int = 0) -> None:
    graph = repro.generators.uniform_random_graph(n, m, seed=seed)
    ranks = repro.random_priorities(n, seed=seed + 1)

    print(f"graph: G({n}, {m});  fixed random order seed={seed + 1}\n")
    print("deterministic engines (same π):")
    reference = None
    for method in ("sequential", "parallel", "rootset"):
        res = repro.maximal_independent_set(graph, ranks, method=method)
        if reference is None:
            reference = res.in_set
        same = np.array_equal(res.in_set, reference)
        print(f"  {method:<12} |MIS| = {res.size:5d}   identical: {same}")
        assert same
    for prefix_size in (1, 17, 500, n):
        res = repro.maximal_independent_set(
            graph, ranks, method="prefix", prefix_size=prefix_size
        )
        same = np.array_equal(res.in_set, reference)
        print(f"  prefix={prefix_size:<6} |MIS| = {res.size:5d}   identical: {same}")
        assert same

    print("\nLuby's algorithm (fresh priorities every round):")
    sets = []
    for s in range(4):
        res = luby_mis(graph, seed=s)
        sets.append(frozenset(res.vertices.tolist()))
        print(f"  seed={s}  |MIS| = {res.size:5d}")
    print(f"  distinct answers across 4 seeds: {len(set(sets))}")

    print("\nAnd a different π gives a different (but equally valid) MIS:")
    other = repro.maximal_independent_set(
        graph, repro.random_priorities(n, seed=seed + 99), method="prefix"
    )
    print(f"  overlap with reference: "
          f"{np.count_nonzero(other.in_set & reference)} / {int(reference.sum())}")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
