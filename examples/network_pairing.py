#!/usr/bin/env python
"""Peer pairing and vertex cover via maximal matching.

Two classic maximal-matching applications on one synthetic network:

1. **Peer pairing** — a P2P overlay wants to pair up as many directly
   connected nodes as possible for bandwidth tests.  A maximal matching
   pairs nodes so that no connected pair is left both-idle, and the greedy
   matching is a 1/2-approximation of the maximum matching.
2. **Monitoring cover** — the endpoints of any maximal matching form a
   vertex cover at most 2x the optimum: placing monitors on the matched
   endpoints observes every link in the network.

The network is an rMat graph (power-law degrees, like real overlays).

Run:
    python examples/network_pairing.py [scale] [edges] [seed]
"""

import sys

import numpy as np

import repro
from repro.core.matching import assert_valid_matching


def main(scale: int = 13, edges: int = 60_000, seed: int = 0) -> None:
    graph = repro.generators.rmat_graph(scale, edges, seed=seed)
    el = graph.edge_list()
    print(f"overlay: {graph.num_vertices} nodes, {graph.num_edges} links, "
          f"max degree {graph.max_degree()}")

    ranks = repro.random_priorities(el.num_edges, seed=seed + 1)
    mm = repro.maximal_matching(el, ranks, method="prefix")
    assert_valid_matching(el, mm.matched, ranks)

    paired = 2 * mm.size
    isolated = int(np.count_nonzero(graph.degrees() == 0))
    eligible = graph.num_vertices - isolated
    print(f"\npairing: {mm.size} pairs "
          f"({paired} of {eligible} connected nodes paired, "
          f"{100 * paired / max(eligible, 1):.1f}%)")
    print("sample pairs:", mm.pairs[:5].tolist())

    # Greedy maximal matching is a 1/2-approximation: the maximum matching
    # has at most 2x the edges.
    print(f"guarantee: maximum matching has <= {2 * mm.size} edges")

    cover = mm.vertex_cover_mask()
    src, dst = graph.arcs()
    assert np.all(cover[src] | cover[dst]), "not a cover!"
    print(f"\nmonitoring cover: {int(cover.sum())} monitors "
          f"(<= 2x optimal) observe all {graph.num_edges} links ✓")

    # Parallel-schedule quality: the whole pairing resolves in a handful
    # of dependence steps despite the power-law degrees.
    par = repro.maximal_matching(el, ranks, method="parallel")
    print(f"\ndependence length of the edge order: {par.stats.steps} steps "
          f"(log2 m = {np.log2(max(el.num_edges, 2)):.1f})")
    assert np.array_equal(par.matched, mm.matched)


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
