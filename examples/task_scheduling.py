#!/usr/bin/env python
"""Task scheduling with iterated MIS — the paper's motivating application.

"If the vertices represent tasks and each edge represents the constraint
that two tasks cannot run in parallel, the MIS finds a maximal set of
tasks to run in parallel."  (Section 1.)

This example builds a synthetic task-conflict graph (tasks conflict when
they touch a shared resource), then schedules all tasks in conflict-free
batches by repeatedly extracting an MIS of the remaining conflict graph.
Because the MIS is the *lexicographically-first* one for a fixed priority
order, the schedule is deterministic: re-running this script with the same
seed reproduces the exact same batches regardless of engine.

Run:
    python examples/task_scheduling.py [num_tasks] [num_resources] [seed]
"""

import sys

import numpy as np

import repro
from repro.graphs.builders import from_edges


def build_conflict_graph(num_tasks: int, num_resources: int, seed: int):
    """Tasks grab 2 random resources; tasks sharing a resource conflict."""
    rng = np.random.default_rng(seed)
    grabs = rng.integers(0, num_resources, size=(num_tasks, 2))
    us, vs = [], []
    # Group tasks by resource and emit pairwise conflicts per resource.
    for r in range(num_resources):
        holders = np.nonzero((grabs == r).any(axis=1))[0]
        if holders.size > 1:
            a, b = np.meshgrid(holders, holders, indexing="ij")
            mask = a < b
            us.append(a[mask])
            vs.append(b[mask])
    if not us:
        e = np.empty(0, dtype=np.int64)
        return from_edges(num_tasks, e, e)
    return from_edges(num_tasks, np.concatenate(us), np.concatenate(vs))


def main(num_tasks: int = 2_000, num_resources: int = 700, seed: int = 3) -> None:
    from repro.extensions import is_mis_decomposition, mis_decomposition

    graph = build_conflict_graph(num_tasks, num_resources, seed)
    print(f"conflict graph: {graph.num_vertices} tasks, "
          f"{graph.num_edges} conflicts, max degree {graph.max_degree()}")

    batches = mis_decomposition(graph, seed=seed)
    assert is_mis_decomposition(graph, batches)
    print(f"\nschedule: {len(batches)} conflict-free batches")
    for i, batch in enumerate(batches[:8]):
        print(f"  batch {i}: {batch.size} tasks")
    if len(batches) > 8:
        print(f"  ... {len(batches) - 8} more")

    # Validate: batches partition tasks, and no batch contains a conflict.
    all_tasks = np.concatenate(batches)
    assert np.array_equal(np.sort(all_tasks), np.arange(num_tasks))
    member = np.full(num_tasks, -1)
    for i, batch in enumerate(batches):
        member[batch] = i
    src, dst = graph.arcs()
    assert not np.any(member[src] == member[dst]), "conflict within a batch!"
    print("\nvalidation: partition ✓, conflict-free batches ✓")

    ideal = graph.max_degree() + 1
    print(f"batches used: {len(batches)}  (greedy bound: Δ+1 = {ideal})")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
