#!/usr/bin/env python
"""Explore the work/parallelism trade-off of the prefix-based algorithm.

This is an interactive miniature of Figure 1: sweep prefix sizes on one
graph and print, per size, the exact work, the number of rounds, the inner
step count, and the simulated running time at several processor counts.
The table makes the paper's headline trade-off tangible:

* prefix 1      -> sequential work, n rounds (no parallelism),
* full prefix   -> maximum parallelism, ~2-3x redundant work,
* the sweet spot sits in between, and moves with the processor count.

Run:
    python examples/prefix_tradeoff.py [n] [m] [seed]
"""

import sys

import repro
from repro.bench.reporting import format_table
from repro.bench.sweeps import default_prefix_sizes, prefix_sweep_mis
from repro.pram import CostModel


def main(n: int = 50_000, m: int = 250_000, seed: int = 0) -> None:
    graph = repro.generators.uniform_random_graph(n, m, seed=seed)
    ranks = repro.random_priorities(n, seed=seed + 1)
    processors = (1, 8, 32)
    points = prefix_sweep_mis(
        graph,
        ranks,
        default_prefix_sizes(n, points=11),
        processors=processors,
        cost=CostModel(),
    )

    rows = []
    for p in points:
        rows.append(
            [
                p.prefix_size,
                f"{p.prefix_frac:.1e}",
                f"{p.norm_work:.3f}",
                p.rounds,
                p.steps,
            ]
            + [f"{p.sim_times[q]:.2e}" for q in processors]
        )
    headers = ["prefix", "prefix/N", "work/N", "rounds", "steps"] + [
        f"t(P={q})" for q in processors
    ]
    print(f"MIS prefix sweep on G({n}, {m}), same MIS at every row "
          f"(|MIS| = {points[0].set_size}):\n")
    print(format_table(headers, rows))

    for q in processors:
        best = min(points, key=lambda p: p.sim_times[q])
        print(f"\noptimal prefix at P={q:>2}: {best.prefix_size} "
              f"(prefix/N = {best.prefix_frac:.1e}), "
              f"simulated {best.sim_times[q]:.2e} s")
    print("\nNote how the optimum moves right as P grows: more processors "
          "can absorb the redundant work of larger prefixes in exchange "
          "for fewer synchronization rounds.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
